//! The paper's motivating use case (§1): chart review at scale.
//!
//! "Studies based on chart review are often limited, including a small
//! number of cases. Means to systematically examine patient charts will
//! provide a method for clinicians to examine a significantly larger set of
//! cases." This example generates a 200-chart cohort, extracts structured
//! data from every chart, trains the smoking classifier, and runs the kind
//! of cohort analysis a clinician would otherwise do by hand.
//!
//! ```text
//! cargo run --release --example cohort_mining
//! ```

use cmr::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let n = 200;
    println!("generating a {n}-chart cohort…");
    let corpus = CorpusBuilder::new().records(n).seed(42).build();

    let pipeline = Pipeline::with_default_schema();

    // Train the smoking classifier on the first half, apply to the rest —
    // exactly the paper's categorical-field workflow.
    let (train, test) = corpus.records.split_at(n / 2);
    let labeled: Vec<(String, String)> = train
        .iter()
        .filter_map(|r| {
            let status = r.smoking?;
            let parsed = cmr::text::Record::parse(&r.text);
            Some((
                parsed.section("Social History")?.body.clone(),
                status.label().to_string(),
            ))
        })
        .collect();
    let mut smoking_clf = CategoricalExtractor::new(FeatureOptions::paper_smoking());
    smoking_clf.train(&labeled);
    println!(
        "trained smoking classifier on {} labeled charts",
        labeled.len()
    );
    if let Some(tree) = smoking_clf.tree() {
        println!(
            "decision tree uses {} features:\n{}",
            tree.features_used().len(),
            tree.render()
        );
    }

    // Mine the held-out charts.
    let mut weights: Vec<f64> = Vec::new();
    let mut hypertension_by_smoking: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut smoking_correct = 0usize;
    let mut smoking_total = 0usize;

    for rec in test {
        let out = pipeline.extract(&rec.text);
        if let Some(w) = out.numeric("weight") {
            weights.push(w.as_f64());
        }
        let has_htn = out.predefined_medical.iter().any(|t| t == "hypertension");
        let parsed = cmr::text::Record::parse(&rec.text);
        let social = parsed
            .section("Social History")
            .map(|s| s.body.clone())
            .unwrap_or_default();
        if let Some(pred) = smoking_clf.classify(&social) {
            let slot = hypertension_by_smoking
                .entry(pred.to_string())
                .or_insert((0, 0));
            slot.1 += 1;
            if has_htn {
                slot.0 += 1;
            }
            if let Some(gold) = rec.smoking {
                smoking_total += 1;
                if gold.label() == pred {
                    smoking_correct += 1;
                }
            }
        }
    }

    println!(
        "\n=== cohort analysis over {} held-out charts =====================",
        test.len()
    );
    let mean_weight = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
    println!(
        "charts with an extracted weight: {} (mean {:.1} lb)",
        weights.len(),
        mean_weight
    );
    println!("\nhypertension prevalence by (classified) smoking status:");
    for (status, (htn, total)) in &hypertension_by_smoking {
        println!(
            "  {status:<8} {htn:>3}/{total:<3} = {:.0}%",
            100.0 * *htn as f64 / (*total).max(1) as f64
        );
    }
    println!(
        "\nsmoking classifier accuracy on held-out charts with gold labels: {}/{} = {:.1}%",
        smoking_correct,
        smoking_total,
        100.0 * smoking_correct as f64 / smoking_total.max(1) as f64
    );
}
