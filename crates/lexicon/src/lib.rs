//! # cmr-lexicon — morphology engine and clinical word knowledge
//!
//! This crate replaces the roles WordNet 2.0 played in the original ICDE 2005
//! system: finding the lemma ("uninfected form") of a surface word,
//! generating inflected variants of feature names, and expanding the
//! manually specified synonym/abbreviation table.
//!
//! ```
//! use cmr_lexicon::{Lemmatizer, WordClass, phrase_variants, expand_abbreviation};
//!
//! let lem = Lemmatizer::new();
//! assert_eq!(lem.lemma("denies", WordClass::Verb), "deny");
//! assert!(phrase_variants("live birth").contains(&"live births".to_string()));
//! assert_eq!(expand_abbreviation("bp"), Some("blood pressure"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod abbrev;
mod inflect;
mod irregular;
mod lemma;
mod words;

pub use abbrev::{expand_abbreviation, expand_phrase, ABBREVIATIONS};
pub use inflect::{
    noun_plural, phrase_variants, variants, verb_3sg, verb_gerund, verb_past, verb_past_participle,
};
pub use irregular::{
    IRREGULAR_ADJS, IRREGULAR_NOUNS, IRREGULAR_PART, IRREGULAR_PAST, IRREGULAR_PLURAL,
    IRREGULAR_VERBS,
};
pub use lemma::{Lemmatizer, WordClass};
pub use words::{
    is_known_adjective, is_known_adverb, is_known_lemma, is_known_noun, is_known_verb, ADJECTIVES,
    ADVERBS, NOUNS, VERBS,
};
