//! The end-to-end pipeline: record in, structured information out.
//!
//! Mirrors Figure 2 of the paper: tokenization/splitting/tagging
//! (cmr-text/cmr-postag for GATE), the link grammar parser, the morphology
//! engine (cmr-lexicon for WordNet), the ontology (cmr-ontology for UMLS),
//! and the extractors of this crate; the output is a structured record
//! (serde-serializable, standing in for the paper's Access database).

use crate::numeric::{AssociationMethod, NumericExtractor, NumericHit};
use crate::schema::Schema;
use crate::terms::MedicalTermExtractor;
use cmr_ontology::{Ontology, ValueSet};
use cmr_text::{NumberValue, Record};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Structured information extracted from one record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExtractedRecord {
    /// Patient identifier from the `Patient:` section.
    pub patient_id: Option<String>,
    /// Numeric attributes by name.
    pub numeric: BTreeMap<String, NumberValue>,
    /// How each numeric attribute was associated (same keys as `numeric`).
    pub numeric_methods: BTreeMap<String, crate::numeric::MethodUsed>,
    /// Predefined past-medical-history terms (concept preferred names).
    pub predefined_medical: Vec<String>,
    /// Other past-medical-history terms.
    pub other_medical: Vec<String>,
    /// Predefined past-surgical-history terms.
    pub predefined_surgical: Vec<String>,
    /// Other past-surgical-history terms.
    pub other_surgical: Vec<String>,
}

impl ExtractedRecord {
    /// Convenience accessor for a numeric attribute.
    pub fn numeric(&self, name: &str) -> Option<NumberValue> {
        self.numeric.get(name).copied()
    }
}

/// Per-stage wall time of one instrumented extraction (see
/// [`Pipeline::extract_instrumented`]). Link-parse time is a subset of
/// `numeric_nanos` and is reported separately through
/// [`Pipeline::parser_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractTiming {
    /// Wall time in the numeric extractor (tagging, number annotation,
    /// link parsing, association).
    pub numeric_nanos: u64,
    /// Wall time in the medical-term extractor (POS patterns,
    /// normalization, ontology lookup).
    pub terms_nanos: u64,
}

/// The extraction pipeline (numeric + medical terms; categorical fields
/// need training data and live in [`crate::CategoricalExtractor`]).
///
/// The schema and ontology are held behind [`Arc`], so a worker pool can
/// construct one pipeline per thread against shared read-only configuration
/// without cloning the concept table (see `cmr-engine`). The pipeline
/// itself is `!Sync` — the link parser keeps a per-instance structure
/// cache — which is exactly why workers each own one.
pub struct Pipeline {
    schema: Arc<Schema>,
    numeric: NumericExtractor,
    terms: MedicalTermExtractor,
    predefined_medical: ValueSet,
    predefined_surgical: ValueSet,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::with_default_schema()
    }
}

impl Pipeline {
    /// Paper schema, full ontology, link-grammar association with pattern
    /// fallback.
    pub fn with_default_schema() -> Pipeline {
        Pipeline::new(
            Schema::paper(),
            Ontology::full(),
            AssociationMethod::LinkWithFallback,
        )
    }

    /// Fully configured pipeline. Accepts owned configuration or
    /// pre-shared `Arc`s (workers in a pool pass clones of the same
    /// `Arc<Schema>` / `Arc<Ontology>`).
    pub fn new(
        schema: impl Into<Arc<Schema>>,
        ontology: impl Into<Arc<Ontology>>,
        method: AssociationMethod,
    ) -> Pipeline {
        Pipeline {
            schema: schema.into(),
            numeric: NumericExtractor::with_method(method),
            terms: MedicalTermExtractor::new(ontology),
            predefined_medical: ValueSet::predefined_medical_history(),
            predefined_surgical: ValueSet::predefined_surgical_history(),
        }
    }

    /// Selects the medical-term pattern inventory (the paper's four
    /// patterns by default; see [`crate::PatternSet`]).
    pub fn with_term_patterns(mut self, patterns: crate::PatternSet) -> Pipeline {
        self.terms.set_patterns(patterns);
        self
    }

    /// Attaches a pool-wide link-parse structure cache
    /// ([`cmr_linkgram::SharedParseCache`]): per-thread pipelines sharing
    /// one parse each sentence shape once per pool instead of once per
    /// worker.
    pub fn with_shared_parse_cache(mut self, cache: cmr_linkgram::SharedParseCache) -> Pipeline {
        self.numeric.set_shared_parse_cache(cache);
        self
    }

    /// The schema in use.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Link-parser cache and timing counters (see
    /// [`cmr_linkgram::ParserStats`]); cumulative over this pipeline's
    /// lifetime.
    pub fn parser_stats(&self) -> cmr_linkgram::ParserStats {
        self.numeric.parser_stats()
    }

    /// Extracts everything the untrained pipeline can from one record.
    pub fn extract(&self, text: &str) -> ExtractedRecord {
        self.extract_parsed(&Record::parse(text))
    }

    /// Like [`Pipeline::extract`], but over an already-parsed [`Record`].
    /// The record is parsed exactly once per extraction — section routing
    /// for numeric attributes and for term sections shares this parse.
    pub fn extract_parsed(&self, record: &Record) -> ExtractedRecord {
        self.extract_instrumented(record, &crate::ExtractBudget::NONE)
            .expect("unlimited budget never trips")
            .0
    }

    /// Like [`Pipeline::extract_parsed`], but enforces a per-record
    /// [`crate::ExtractBudget`]. The sentence/step budget applies to the
    /// numeric stage (where the link parser lives); the deadline is also
    /// re-checked between term sections.
    pub fn extract_budgeted(
        &self,
        record: &Record,
        budget: &crate::ExtractBudget,
    ) -> Result<ExtractedRecord, crate::BudgetExceeded> {
        self.extract_instrumented(record, budget)
            .map(|(out, _)| out)
    }

    /// Budgeted extraction that also reports per-stage wall time, so batch
    /// drivers (see `cmr-engine`) can fill stage histograms without timing
    /// the pipeline from outside.
    pub fn extract_instrumented(
        &self,
        record: &Record,
        budget: &crate::ExtractBudget,
    ) -> Result<(ExtractedRecord, ExtractTiming), crate::BudgetExceeded> {
        let mut timing = ExtractTiming::default();
        let mut out = ExtractedRecord {
            patient_id: record.patient_id.clone(),
            ..ExtractedRecord::default()
        };

        // Numeric attributes.
        let numeric_start = std::time::Instant::now();
        let numeric_hits = self
            .numeric
            .extract_budgeted(record, &self.schema.numeric, budget);
        timing.numeric_nanos = numeric_start.elapsed().as_nanos() as u64;
        for NumericHit {
            field,
            value,
            method,
        } in numeric_hits?
        {
            out.numeric.insert(field.clone(), value);
            out.numeric_methods.insert(field, method);
        }

        let terms_start = std::time::Instant::now();

        // Medical-term attributes. Term extraction has no step notion, but
        // the deadline still applies between term fields.
        for term_field in &self.schema.terms {
            if let Some(deadline) = budget.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(crate::BudgetExceeded { sentences_done: 0 });
                }
            }
            let (predefined_set, slots) = match term_field.name.as_str() {
                "past_medical_history" => (
                    &self.predefined_medical,
                    (&mut out.predefined_medical, &mut out.other_medical),
                ),
                "past_surgical_history" => (
                    &self.predefined_surgical,
                    (&mut out.predefined_surgical, &mut out.other_surgical),
                ),
                _ => continue,
            };
            for section_name in &term_field.sections {
                let Some(section) = record.section(section_name) else {
                    continue;
                };
                let (pre, other) = self
                    .terms
                    .extract_partitioned(&section.body, predefined_set);
                for hit in pre {
                    let name = hit.concept.preferred.to_string();
                    if !slots.0.contains(&name) {
                        slots.0.push(name);
                    }
                }
                for hit in other {
                    let name = hit.concept.preferred.to_string();
                    if !slots.1.contains(&name) {
                        slots.1.push(name);
                    }
                }
            }
        }
        timing.terms_nanos = terms_start.elapsed().as_nanos() as u64;
        Ok((out, timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_corpus::APPENDIX_RECORD;

    #[test]
    fn appendix_record_end_to_end() {
        let p = Pipeline::with_default_schema();
        let out = p.extract(APPENDIX_RECORD);
        assert_eq!(out.patient_id.as_deref(), Some("2"));
        assert_eq!(
            out.numeric("blood_pressure"),
            Some(NumberValue::Ratio(142, 78))
        );
        assert_eq!(out.numeric("pulse"), Some(NumberValue::Int(96)));
        assert_eq!(out.numeric("weight"), Some(NumberValue::Int(211)));
        assert_eq!(out.numeric("menarche_age"), Some(NumberValue::Int(10)));
        assert_eq!(out.numeric("gravida"), Some(NumberValue::Int(4)));
        assert_eq!(out.numeric("para"), Some(NumberValue::Int(3)));
        assert_eq!(out.numeric("first_birth_age"), Some(NumberValue::Int(18)));
        assert_eq!(out.numeric("age"), Some(NumberValue::Int(50)));
        // The Appendix vitals line has no temperature.
        assert_eq!(out.numeric("temperature"), None);
        // PMH: diabetes, heart disease, high blood pressure (→ hypertension),
        // hypercholesterolemia, bronchitis, arrhythmia, depression.
        assert!(out.predefined_medical.contains(&"diabetes".to_string()));
        assert!(out.predefined_medical.contains(&"hypertension".to_string()));
        assert!(out.predefined_medical.contains(&"arrhythmia".to_string()));
        assert!(out.other_medical.contains(&"bronchitis".to_string()));
        // PSH: cervical laminectomy → laminectomy (not predefined).
        assert!(
            out.other_surgical.contains(&"laminectomy".to_string()),
            "{:?}",
            out.other_surgical
        );
        assert!(out.predefined_surgical.is_empty());
    }

    #[test]
    fn serializes_to_json() {
        let p = Pipeline::with_default_schema();
        let out = p.extract(APPENDIX_RECORD);
        let json = serde_json::to_string_pretty(&out).expect("serializes");
        assert!(json.contains("blood_pressure"));
        let back: ExtractedRecord = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.numeric("pulse"), out.numeric("pulse"));
    }

    #[test]
    fn empty_record() {
        let p = Pipeline::with_default_schema();
        let out = p.extract("");
        assert!(out.numeric.is_empty());
        assert!(out.predefined_medical.is_empty());
    }
}
