//! ID3 training, prediction and the cross-validation protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn smoking_dataset() -> cmr_ml::Dataset {
    let corpus = cmr_bench::paper_corpus();
    let examples = cmr_bench::smoking_examples(&corpus);
    let clf = cmr_core::CategoricalExtractor::new(cmr_core::FeatureOptions::paper_smoking());
    clf.build_dataset(&examples)
}

fn bench_id3(c: &mut Criterion) {
    let data = smoking_dataset();
    let mut g = c.benchmark_group("id3");
    g.bench_function("train_smoking_45x", |b| {
        b.iter(|| {
            black_box(cmr_ml::Id3Tree::train(
                black_box(&data),
                cmr_ml::Id3Params::default(),
            ))
        })
    });
    let tree = cmr_ml::Id3Tree::train(&data, cmr_ml::Id3Params::default());
    let fv = &data.instances[0].features;
    g.bench_function("predict", |b| {
        b.iter(|| black_box(tree.predict(black_box(fv))))
    });
    g.bench_function("cv_5fold_x10", |b| {
        b.iter(|| black_box(cmr_ml::CrossValidation::default().run(black_box(&data))))
    });
    g.finish();

    let mut g = c.benchmark_group("feature_extraction");
    let fx = cmr_core::FeatureExtractor::new(cmr_core::FeatureOptions::paper_smoking());
    let text = "She quit smoking five years ago. Alcohol use, occasional. Drug use, none.";
    g.bench_function("social_history_features", |b| {
        b.iter(|| black_box(fx.extract(black_box(text))))
    });
    g.finish();
}

criterion_group!(benches, bench_id3);
criterion_main!(benches);
