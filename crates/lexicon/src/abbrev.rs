//! Clinical abbreviations and feature-name synonyms.
//!
//! The paper (§3.1) widens feature identification with "target synonyms"
//! that were "manually specified". This table is that manual specification:
//! dictation shorthand → expanded form, used both for feature-keyword
//! matching and for ontology normalization.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Abbreviation (lower-case) → expansion.
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("bp", "blood pressure"),
    ("hr", "heart rate"),
    ("rr", "respiratory rate"),
    ("temp", "temperature"),
    ("wt", "weight"),
    ("ht", "height"),
    ("hx", "history"),
    ("pmh", "past medical history"),
    ("psh", "past surgical history"),
    ("fh", "family history"),
    ("sh", "social history"),
    ("gyn", "gynecologic"),
    ("ob", "obstetric"),
    ("lmp", "last menstrual period"),
    ("flb", "first live birth"),
    ("cva", "cerebrovascular accident"),
    ("mi", "myocardial infarction"),
    ("chf", "congestive heart failure"),
    ("cad", "coronary artery disease"),
    ("copd", "chronic obstructive pulmonary disease"),
    ("htn", "hypertension"),
    ("dm", "diabetes mellitus"),
    ("gerd", "gastroesophageal reflux disease"),
    ("uti", "urinary tract infection"),
    ("tia", "transient ischemic attack"),
    ("dvt", "deep vein thrombosis"),
    ("pe", "pulmonary embolism"),
    ("ca", "cancer"),
    ("bx", "biopsy"),
    ("tah", "total abdominal hysterectomy"),
    ("bso", "bilateral salpingo-oophorectomy"),
    ("lap chole", "laparoscopic cholecystectomy"),
    ("c-section", "cesarean section"),
    ("appy", "appendectomy"),
    ("t&a", "tonsillectomy and adenoidectomy"),
    ("heent", "head eyes ears nose throat"),
    (
        "perrla",
        "pupils equal round reactive to light and accommodation",
    ),
    ("etoh", "alcohol"),
    ("ppd", "packs per day"),
];

fn table() -> &'static HashMap<&'static str, &'static str> {
    static T: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    T.get_or_init(|| ABBREVIATIONS.iter().copied().collect())
}

/// Expands `term` if it is a known clinical abbreviation (case-insensitive);
/// returns `None` otherwise.
pub fn expand_abbreviation(term: &str) -> Option<&'static str> {
    table().get(term.to_lowercase().as_str()).copied()
}

/// Expands every abbreviated word of a phrase, leaving other words intact:
/// `"bp check"` → `"blood pressure check"`.
pub fn expand_phrase(phrase: &str) -> String {
    phrase
        .split_whitespace()
        .map(|w| expand_abbreviation(w).unwrap_or(w).to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_abbreviations() {
        assert_eq!(expand_abbreviation("BP"), Some("blood pressure"));
        assert_eq!(expand_abbreviation("cva"), Some("cerebrovascular accident"));
        assert_eq!(expand_abbreviation("pressure"), None);
    }

    #[test]
    fn phrase_expansion() {
        assert_eq!(expand_phrase("bp check"), "blood pressure check");
        assert_eq!(expand_phrase("routine visit"), "routine visit");
    }

    #[test]
    fn no_duplicate_keys() {
        let mut seen = std::collections::HashSet::new();
        for (k, _) in ABBREVIATIONS {
            assert!(seen.insert(*k), "duplicate abbreviation {k}");
        }
    }
}
