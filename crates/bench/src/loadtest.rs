//! `cmr loadtest` — the built-in load generator for `cmr serve`.
//!
//! A small hand-rolled HTTP/1.1 client (same zero-dependency footing as
//! the server) that drives `POST /extract` from `--concurrency` threads,
//! each with one keep-alive connection, and reports exact percentiles
//! computed client-side from every per-request latency sample:
//!
//! * **closed loop** (default): each thread sends the next request the
//!   moment the previous response lands — measures the service at its
//!   natural saturation for that concurrency.
//! * **open loop** (`--rps R`): requests are *scheduled* at a fixed rate
//!   and latency is measured from the scheduled send time, so a slow
//!   server accrues queueing delay in the numbers instead of silently
//!   slowing the generator down (coordinated-omission resistance).
//!
//! A keep-alive connection the server closed between requests (stale
//! reuse — routine during server-side idle shedding) is retried once on
//! a fresh connection and counted in `retried_stale`, not as an error;
//! that is the standard HTTP client contract.

use cmr_corpus::CorpusBuilder;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What to run against which server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Client threads (one keep-alive connection each).
    pub concurrency: usize,
    /// How long to generate load, seconds.
    pub duration_secs: f64,
    /// Open-loop target rate (requests/sec across all threads); `None`
    /// runs closed-loop.
    pub rps: Option<f64>,
    /// Per-request socket timeout, milliseconds.
    pub timeout_ms: u64,
    /// Size of the note pool cycled through as request bodies (gold
    /// corpus; capped at the corpus size).
    pub notes: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7171".to_string(),
            concurrency: 4,
            duration_secs: 10.0,
            rps: None,
            timeout_ms: 10_000,
            notes: 50,
        }
    }
}

/// The loadtest result, written to `BENCH_serve.json` by the bench leg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Report format version.
    pub version: u32,
    /// `closed` or `open`.
    pub mode: String,
    /// Client threads used.
    pub concurrency: u64,
    /// Wall-clock of the run, seconds.
    pub duration_secs: f64,
    /// Open-loop target rate, when one was set.
    pub target_rps: Option<f64>,
    /// Requests attempted (including errored ones).
    pub sent: u64,
    /// `2xx` responses with a well-formed body.
    pub ok: u64,
    /// `429` admission rejections.
    pub rejected: u64,
    /// Other `4xx` responses.
    pub client_errors: u64,
    /// `5xx` responses.
    pub server_errors: u64,
    /// Connection attempts nobody accepted (server down/draining); no
    /// request was in flight, so these are not dropped responses.
    pub refused: u64,
    /// An *established* connection failed mid-request (read/write error
    /// that was not a retryable stale keep-alive reuse) — each of these
    /// is a genuinely dropped response.
    pub transport_errors: u64,
    /// Stale keep-alive connections retried on a fresh socket.
    pub retried_stale: u64,
    /// Successful requests per second over the run.
    pub throughput_rps: f64,
    /// Mean latency over `ok` requests, microseconds.
    pub mean_us: u64,
    /// Exact 50th percentile latency, microseconds.
    pub p50_us: u64,
    /// Exact 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// Exact 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Exact 99.9th percentile latency, microseconds.
    pub p999_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

/// One finished request, as seen by a generator thread.
enum Outcome {
    Status(u16),
    /// `connect()` failed — nobody is accepting (server down, draining,
    /// or not up yet). No request was ever in flight, so nothing was
    /// dropped; distinct from a connection that broke mid-request.
    Refused,
    Transport,
}

/// A client-side keep-alive connection with its response buffer.
struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Responses completed on this connection (0 ⇒ fresh, reuse-EOF is a
    /// real error; >0 ⇒ stale close is retryable).
    served: u64,
}

impl ClientConn {
    fn connect(addr: &str, timeout: Duration) -> io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(ClientConn {
            stream,
            buf: Vec::new(),
            served: 0,
        })
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 8192];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Ensures at least `len` bytes are buffered.
    fn need(&mut self, len: usize) -> io::Result<()> {
        while self.buf.len() < len {
            if self.fill()? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body"));
            }
        }
        Ok(())
    }

    /// Finds `pat` at-or-after `from`, reading as needed.
    fn find(&mut self, pat: &[u8], from: usize) -> io::Result<usize> {
        loop {
            if self.buf.len() >= from + pat.len() {
                if let Some(i) = self.buf[from..].windows(pat.len()).position(|w| w == pat) {
                    return Ok(from + i);
                }
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in head"));
            }
        }
    }

    /// Writes one request and reads one full response. Returns
    /// `(status, body, keep_alive)`.
    fn request(&mut self, bytes: &[u8]) -> io::Result<(u16, Vec<u8>, bool)> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;

        let head_end = self.find(b"\r\n\r\n", 0)?;
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        let mut keep_alive = true;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => content_length = value.parse().ok(),
                "transfer-encoding" => chunked = value.eq_ignore_ascii_case("chunked"),
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        let mut consumed = head_end + 4;

        if status == 100 {
            // Interim response (the client never sends Expect, but be
            // tolerant): skip it and read the real one.
            self.buf.drain(..consumed);
            return self.read_final(keep_alive);
        }

        let mut body = Vec::new();
        if chunked {
            loop {
                let line_end = self.find(b"\r\n", consumed)?;
                let size_str = String::from_utf8_lossy(&self.buf[consumed..line_end]).into_owned();
                let size = usize::from_str_radix(size_str.trim(), 16)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
                consumed = line_end + 2;
                if size == 0 {
                    self.need(consumed + 2)?;
                    consumed += 2;
                    break;
                }
                self.need(consumed + size + 2)?;
                body.extend_from_slice(&self.buf[consumed..consumed + size]);
                consumed += size + 2;
            }
        } else if let Some(n) = content_length {
            self.need(consumed + n)?;
            body.extend_from_slice(&self.buf[consumed..consumed + n]);
            consumed += n;
        } else {
            // No framing: body runs to connection close.
            keep_alive = false;
            loop {
                match self.fill() {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => return Err(e),
                }
            }
            body.extend_from_slice(&self.buf[consumed..]);
            consumed = self.buf.len();
        }
        self.buf.drain(..consumed);
        self.served += 1;
        Ok((status, body, keep_alive))
    }

    /// Reads the response following a skipped interim `100`.
    fn read_final(&mut self, _ka: bool) -> io::Result<(u16, Vec<u8>, bool)> {
        // Re-enter the normal path with an empty request write.
        self.request(b"")
    }
}

/// Builds the raw request bytes for one `POST /extract` of `note`.
fn extract_request(addr: &str, note: &str) -> Vec<u8> {
    let body = note.as_bytes();
    let mut req = format!(
        "POST /extract HTTP/1.1\r\nHost: {addr}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

/// Per-thread tallies, merged at the end.
#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    rejected: u64,
    client_errors: u64,
    server_errors: u64,
    refused: u64,
    transport_errors: u64,
    retried_stale: u64,
    /// Latency of each `2xx` request, microseconds.
    latencies: Vec<u64>,
}

/// Sends one request with the stale-keep-alive retry rule: a connection
/// that already served a response and dies before yielding any byte of
/// this one is replaced once, invisibly to the caller's error counts.
fn send_one(
    conn: &mut Option<ClientConn>,
    addr: &str,
    timeout: Duration,
    bytes: &[u8],
    tally: &mut Tally,
) -> Outcome {
    for attempt in 0..2 {
        let fresh = conn.is_none();
        let c = match conn {
            Some(c) => c,
            None => match ClientConn::connect(addr, timeout) {
                Ok(c) => conn.insert(c),
                Err(_) => return Outcome::Refused,
            },
        };
        match c.request(bytes) {
            Ok((status, _body, keep_alive)) => {
                if !keep_alive {
                    *conn = None;
                }
                return Outcome::Status(status);
            }
            Err(_) => {
                let was_reused = !fresh && conn.as_ref().is_some_and(|c| c.served > 0);
                *conn = None;
                if attempt == 0 && was_reused {
                    tally.retried_stale += 1;
                    continue; // stale keep-alive: one fresh retry
                }
                return Outcome::Transport;
            }
        }
    }
    Outcome::Transport
}

/// Runs the generator and collects the report. Fails fast (before any
/// load) if the server is unreachable.
pub fn run_loadtest(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let timeout = Duration::from_millis(cfg.timeout_ms.max(1));
    // Probe first so "wrong address" is an error, not a report full of
    // transport failures.
    ClientConn::connect(&cfg.addr, timeout).map_err(|e| format!("connecting {}: {e}", cfg.addr))?;

    let notes: Vec<String> = CorpusBuilder::new()
        .build()
        .records
        .iter()
        .take(cfg.notes.max(1))
        .map(|r| r.text.clone())
        .collect();
    let threads = cfg.concurrency.max(1);
    let duration = Duration::from_secs_f64(cfg.duration_secs.max(0.1));
    let per_thread_interval = cfg
        .rps
        .filter(|r| *r > 0.0)
        .map(|rps| Duration::from_secs_f64(threads as f64 / rps));

    let start = Instant::now();
    let deadline = start + duration;
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let notes = &notes;
                let addr = cfg.addr.as_str();
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let mut conn: Option<ClientConn> = None;
                    let mut k: u64 = 0;
                    loop {
                        // Open loop: latency clocks from the *scheduled*
                        // send time, so server backlog shows up as
                        // latency instead of a slower generator.
                        let scheduled = match per_thread_interval {
                            Some(interval) => {
                                let at = start
                                    + interval.mul_f64(k as f64)
                                    + interval.mul_f64(tid as f64 / threads as f64);
                                if at >= deadline {
                                    break;
                                }
                                let now = Instant::now();
                                if at > now {
                                    std::thread::sleep(at - now);
                                }
                                at
                            }
                            None => {
                                if Instant::now() >= deadline {
                                    break;
                                }
                                Instant::now()
                            }
                        };
                        let note = &notes[(tid + k as usize * threads) % notes.len()];
                        let bytes = extract_request(addr, note);
                        tally.sent += 1;
                        match send_one(&mut conn, addr, timeout, &bytes, &mut tally) {
                            Outcome::Status(s) if (200..300).contains(&s) => {
                                tally.ok += 1;
                                let us = scheduled.elapsed().as_micros() as u64;
                                tally.latencies.push(us);
                            }
                            Outcome::Status(429) => tally.rejected += 1,
                            Outcome::Status(s) if (400..500).contains(&s) => {
                                tally.client_errors += 1
                            }
                            Outcome::Status(_) => tally.server_errors += 1,
                            Outcome::Refused => {
                                tally.refused += 1;
                                // Don't hot-loop against a dead address:
                                // refusal is instant, so pace the probes.
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Outcome::Transport => tally.transport_errors += 1,
                        }
                        k += 1;
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();

    let mut merged = Tally::default();
    for t in tallies {
        merged.sent += t.sent;
        merged.ok += t.ok;
        merged.rejected += t.rejected;
        merged.client_errors += t.client_errors;
        merged.server_errors += t.server_errors;
        merged.refused += t.refused;
        merged.transport_errors += t.transport_errors;
        merged.retried_stale += t.retried_stale;
        merged.latencies.extend(t.latencies);
    }
    merged.latencies.sort_unstable();
    let lat = &merged.latencies;
    let mean = if lat.is_empty() {
        0
    } else {
        lat.iter().sum::<u64>() / lat.len() as u64
    };
    Ok(LoadReport {
        version: 1,
        mode: if per_thread_interval.is_some() {
            "open".to_string()
        } else {
            "closed".to_string()
        },
        concurrency: threads as u64,
        duration_secs: wall,
        target_rps: cfg.rps,
        sent: merged.sent,
        ok: merged.ok,
        rejected: merged.rejected,
        client_errors: merged.client_errors,
        server_errors: merged.server_errors,
        refused: merged.refused,
        transport_errors: merged.transport_errors,
        retried_stale: merged.retried_stale,
        throughput_rps: if wall > 0.0 {
            merged.ok as f64 / wall
        } else {
            0.0
        },
        mean_us: mean,
        p50_us: percentile(lat, 0.50),
        p90_us: percentile(lat, 0.90),
        p99_us: percentile(lat, 0.99),
        p999_us: percentile(lat, 0.999),
        max_us: lat.last().copied().unwrap_or(0),
    })
}

/// Exact percentile over a sorted sample (nearest-rank convention).
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The serve latency gate for CI: the current run's p99 must stay within
/// `threshold` (fraction) of the committed baseline, with a 10 ms
/// absolute allowance so near-zero baselines don't gate on scheduler
/// jitter — and the run itself must be clean (no 5xx, no transport
/// errors, and something actually succeeded).
pub fn check_latency_regression(
    current: &LoadReport,
    baseline: &LoadReport,
    threshold: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    if current.ok == 0 {
        failures.push("no successful requests".to_string());
    }
    if current.server_errors > 0 {
        failures.push(format!("{} server error(s) (5xx)", current.server_errors));
    }
    if current.transport_errors > 0 {
        failures.push(format!("{} transport error(s)", current.transport_errors));
    }
    if current.refused > 0 {
        // A gated run is against a server that is supposed to be up for
        // the whole window; refusals mean it wasn't.
        failures.push(format!("{} refused connection(s)", current.refused));
    }
    let ceiling = baseline.p99_us as f64 * (1.0 + threshold) + 10_000.0;
    if current.p99_us as f64 > ceiling {
        failures.push(format!(
            "p99 {}us exceeds the ceiling {:.0}us (baseline {}us, threshold {:.0}% + 10ms slack)",
            current.p99_us,
            ceiling,
            baseline.p99_us,
            threshold * 100.0
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn report(ok: u64, p99: u64) -> LoadReport {
        LoadReport {
            version: 1,
            mode: "closed".to_string(),
            concurrency: 2,
            duration_secs: 1.0,
            target_rps: None,
            sent: ok,
            ok,
            rejected: 0,
            client_errors: 0,
            server_errors: 0,
            refused: 0,
            transport_errors: 0,
            retried_stale: 0,
            throughput_rps: ok as f64,
            mean_us: p99 / 2,
            p50_us: p99 / 2,
            p90_us: p99 * 9 / 10,
            p99_us: p99,
            p999_us: p99,
            max_us: p99,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[42], 0.99), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn latency_gate_trips_and_passes() {
        let base = report(100, 50_000);
        // Within threshold: fine.
        assert!(check_latency_regression(&report(100, 60_000), &base, 0.5).is_ok());
        // Way past threshold + slack: trips.
        let err = check_latency_regression(&report(100, 120_000), &base, 0.5).unwrap_err();
        assert!(err.contains("p99"), "{err}");
        // 5xx or transport errors always trip.
        let mut bad = report(100, 10_000);
        bad.server_errors = 1;
        assert!(check_latency_regression(&bad, &base, 0.5).is_err());
        let mut bad = report(100, 10_000);
        bad.transport_errors = 2;
        assert!(check_latency_regression(&bad, &base, 0.5).is_err());
        // An empty run never passes.
        assert!(check_latency_regression(&report(0, 0), &base, 0.5).is_err());
    }

    #[test]
    fn small_baseline_gets_absolute_slack() {
        // A 1ms baseline p99 must not gate a 5ms run — scheduler jitter
        // on a loaded CI box is bigger than that.
        let base = report(100, 1_000);
        assert!(check_latency_regression(&report(100, 5_000), &base, 0.5).is_ok());
    }

    #[test]
    fn load_report_round_trips_serde() {
        let r = report(7, 1234);
        let json = serde_json::to_string(&r).expect("serialize");
        let back: LoadReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.ok, 7);
        assert_eq!(back.p99_us, 1234);
        assert_eq!(back.mode, "closed");
        assert_eq!(back.target_rps, None);
    }
}
