//! Concepts and semantic types.

use std::fmt;

/// Coarse semantic type of a concept (a simplification of the UMLS semantic
/// network sufficient for the extraction tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticType {
    /// Diseases and syndromes (diabetes, hypertension).
    Disease,
    /// Therapeutic or diagnostic procedures (cholecystectomy).
    Procedure,
    /// Signs and findings (lymphadenopathy, tenderness).
    Finding,
    /// Pharmacologic substances (aspirin, Lipitor).
    Drug,
    /// Body parts and anatomy (axilla, breast).
    Anatomy,
    /// Behaviors (smoking, alcohol use).
    Behavior,
}

impl fmt::Display for SemanticType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SemanticType::Disease => "Disease or Syndrome",
            SemanticType::Procedure => "Therapeutic or Diagnostic Procedure",
            SemanticType::Finding => "Sign or Finding",
            SemanticType::Drug => "Pharmacologic Substance",
            SemanticType::Anatomy => "Body Part or Anatomy",
            SemanticType::Behavior => "Individual Behavior",
        };
        f.write_str(s)
    }
}

/// Whether a concept is common in clinical dictation or belongs to the long
/// tail. Ontology *profiles* use this to model incomplete vocabularies (the
/// paper attributes its false positives to "the incompleteness of domain
/// ontology").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rarity {
    /// Core clinical vocabulary, present in every profile.
    Common,
    /// Long-tail vocabulary, dropped by the degraded profile.
    Rare,
}

/// A medical concept: identifier, preferred name, synonyms, semantic type.
///
/// CUIs are synthetic (`CMR`-prefixed) — the real UMLS is licensed and not
/// redistributable; see DESIGN.md for the substitution rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Synthetic concept identifier, e.g. `CMR0001`.
    pub cui: &'static str,
    /// Preferred surface name (lower-case).
    pub preferred: &'static str,
    /// Synononymous surface forms (lower-case), not including the preferred
    /// name.
    pub synonyms: &'static [&'static str],
    /// Semantic type.
    pub semtype: SemanticType,
    /// Vocabulary tier (see [`Rarity`]).
    pub rarity: Rarity,
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] ({})", self.preferred, self.cui, self.semtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let c = Concept {
            cui: "CMR0001",
            preferred: "diabetes mellitus",
            synonyms: &["diabetes"],
            semtype: SemanticType::Disease,
            rarity: Rarity::Common,
        };
        let s = c.to_string();
        assert!(s.contains("diabetes mellitus"));
        assert!(s.contains("CMR0001"));
        assert!(s.contains("Disease"));
    }
}
