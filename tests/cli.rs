//! End-to-end CLI tests: drive the real `cmr` binary the way a user would
//! — generate a cohort, extract it in parallel — and check the contract
//! that matters for scripting: one valid JSON object per note, in input
//! order, byte-identical for any `--jobs` value.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn cmr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmr"))
}

/// A fresh scratch directory under the target-owned temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmr-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn generate_notes(dir: &std::path::Path, records: usize) -> Vec<PathBuf> {
    let status = cmr()
        .args([
            "generate",
            "--records",
            &records.to_string(),
            "--seed",
            "42",
            "--out",
            dir.to_str().expect("utf-8 path"),
        ])
        .status()
        .expect("run cmr generate");
    assert!(status.success(), "generate failed");
    let mut notes: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read scratch dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    notes.sort();
    assert_eq!(notes.len(), records, "one .txt note per record");
    notes
}

fn extract_stdout(notes: &[PathBuf], jobs: &str) -> String {
    let out = cmr()
        .arg("extract")
        .args(["--jobs", jobs])
        .args(notes)
        .output()
        .expect("run cmr extract");
    assert!(
        out.status.success(),
        "extract --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn generate_then_extract_parallel_yields_json_per_note() {
    let dir = scratch("extract");
    let notes = generate_notes(&dir, 8);

    let stdout = extract_stdout(&notes, "4");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "one output line per note");
    for (i, line) in lines.iter().enumerate() {
        let value = serde_json::parse_value_str(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e:?}): {line}"));
        let serde::Value::Object(fields) = value else {
            panic!("line {i} is not a JSON object: {line}");
        };
        assert!(
            fields.iter().any(|(k, _)| k == "numeric"),
            "line {i} has no numeric field: {line}"
        );
    }

    // The scripting contract: worker count never changes the bytes.
    let serial = extract_stdout(&notes, "1");
    assert_eq!(serial, stdout, "--jobs 1 and --jobs 4 outputs differ");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_sweep_reports_degradation_curve() {
    let dir = scratch("chaos");
    let report_path = dir.join("chaos.json");
    let out = cmr()
        .args([
            "chaos",
            "--noise",
            "0,0.2",
            "--seed",
            "7",
            "--records",
            "6",
            "--jobs",
            "2",
            "--stats",
            "--out",
            report_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run cmr chaos");
    assert!(
        out.status.success(),
        "chaos failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("num-F1"), "no curve table:\n{stdout}");
    assert!(stdout.contains("salvage"), "--stats tier table missing");

    let json = std::fs::read_to_string(&report_path).expect("report written");
    let value = serde_json::parse_value_str(&json).expect("report is valid JSON");
    let serde::Value::Object(fields) = value else {
        panic!("report is not a JSON object");
    };
    let levels = fields
        .iter()
        .find(|(k, _)| k == "levels")
        .map(|(_, v)| v)
        .expect("report has levels");
    let serde::Value::Array(levels) = levels else {
        panic!("levels is not an array");
    };
    assert_eq!(levels.len(), 2, "one report entry per noise level");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ndjson_streaming_pipes_generate_into_extract() {
    // cmr generate --out - | cmr extract - --jobs 2
    let generated = cmr()
        .args(["generate", "--records", "4", "--seed", "7", "--out", "-"])
        .output()
        .expect("run cmr generate --out -");
    assert!(generated.status.success());
    let ndjson = generated.stdout;
    assert_eq!(
        ndjson
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count(),
        4
    );

    let mut child = cmr()
        .args(["extract", "-", "--jobs", "2", "--stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cmr extract -");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(&ndjson)
        .expect("feed NDJSON");
    let out = child.wait_with_output().expect("wait for extract");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_eq!(
        stdout.lines().count(),
        4,
        "one extraction per streamed record"
    );
    for line in stdout.lines() {
        serde_json::parse_value_str(line).expect("valid JSON per line");
    }

    // --stats emits a JSON metrics document on stderr.
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    let metrics = serde_json::parse_value_str(stderr.trim()).expect("stats are valid JSON");
    let serde::Value::Object(fields) = metrics else {
        panic!("stats not an object")
    };
    assert!(
        fields.iter().any(|(k, _)| k == "records_per_sec"),
        "{stderr}"
    );
}

#[test]
fn lint_passes_deny_warnings_and_formats_agree() {
    // The committed assets must be clean at the warning threshold.
    let human = cmr()
        .args(["lint", "--deny", "warnings", "--no-color"])
        .output()
        .expect("run cmr lint");
    assert!(
        human.status.success(),
        "committed assets fail `cmr lint --deny warnings`:\n{}",
        String::from_utf8_lossy(&human.stdout)
    );
    let text = String::from_utf8(human.stdout).expect("utf-8");
    assert!(text.contains("0 errors, 0 warnings"), "{text}");
    assert!(!text.contains('\u{1b}'), "--no-color must strip ANSI");

    // JSON output parses and its summary agrees with the human render.
    let json = cmr()
        .args(["lint", "--format", "json"])
        .output()
        .expect("run cmr lint --format json");
    assert!(json.status.success());
    let doc = serde_json::parse_value_str(String::from_utf8(json.stdout).expect("utf-8").trim())
        .expect("lint JSON parses");
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(summary.get("errors"), Some(&serde::Value::Int(0)));
    assert_eq!(summary.get("warnings"), Some(&serde::Value::Int(0)));

    // SARIF output parses and declares the driver.
    let sarif = cmr()
        .args(["lint", "--format", "sarif"])
        .output()
        .expect("run cmr lint --format sarif");
    assert!(sarif.status.success());
    let doc = serde_json::parse_value_str(String::from_utf8(sarif.stdout).expect("utf-8").trim())
        .expect("SARIF parses");
    let runs = doc.get("runs").and_then(|r| r.as_array()).expect("runs");
    assert_eq!(runs.len(), 1);
}

#[test]
fn lint_deny_notes_exits_one_without_usage_noise() {
    // The committed assets do carry advisory notes; denying notes must
    // exit 1 (a lint failure), not 2 (a usage error).
    let out = cmr()
        .args(["lint", "--deny", "notes", "--no-color"])
        .output()
        .expect("run cmr lint --deny notes");
    assert_eq!(out.status.code(), Some(1), "lint failure must exit 1");
    assert!(
        String::from_utf8_lossy(&out.stderr).is_empty(),
        "deny failure is not a usage error"
    );
}
