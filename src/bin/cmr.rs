//! `cmr` — command-line interface to the extraction system.
//!
//! ```text
//! cmr generate --records 50 --seed 7 --out notes/     # write synthetic notes
//! cmr extract notes/patient_001.txt …                 # notes → JSON lines
//! cmr extract --jobs 4 --stats notes/*.txt            # parallel, with metrics
//! cmr generate --records 200 --out - | cmr extract -  # NDJSON streaming
//! cmr parse "She quit smoking five years ago."        # linkage diagram
//! cmr terms "Significant for diabetes and a midline hernia closure."
//! ```

#![deny(clippy::unwrap_used)]

use cmr::engine::{
    merge_outputs, merge_quarantine, verify_output_prefix, CorpusHasher, JournalReplay,
    OutputFingerprint, ShardSpec, Snapshot,
};
use cmr::prelude::*;
use cmr::serve::ndjson::note_from_line;
use std::fs;
use std::io::{BufRead, Seek, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A counting global allocator for `cmr bench`'s allocations-per-note
/// metric. The library crates are `forbid(unsafe_code)`, so the allocator
/// lives here in the binary; two relaxed atomic increments per allocation
/// are noise next to the allocation itself.
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Cumulative `(allocations, bytes)` since process start.
    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

#[global_allocator]
static ALLOC: alloc_count::Counting = alloc_count::Counting;

/// Graceful-shutdown plumbing: SIGINT/SIGTERM raise one shared flag the
/// engine's feeder and the chaos sweep poll. The handler body is a single
/// relaxed store — async-signal-safe. A second signal while draining
/// falls back to the default disposition (immediate death), so a hung
/// drain can still be killed interactively.
#[cfg(unix)]
mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
        // Restore the default disposition so the *next* signal kills the
        // process even if the drain wedges.
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    /// Installs the handlers (idempotent) and returns the shared flag.
    pub fn install() -> Arc<AtomicBool> {
        let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        flag
    }

    /// Forwards SIGTERM to a child process, so a draining supervisor
    /// passes its shutdown on and each shard flushes its own journal
    /// (`Child::kill` would SIGKILL, losing the child's drain).
    pub fn terminate(child: &mut std::process::Child) {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        unsafe {
            kill(child.id() as i32, SIGTERM);
        }
    }
}

#[cfg(not(unix))]
mod shutdown {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// No signal handling off unix: the flag exists but is never raised.
    pub fn install() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }

    /// Off unix there is no SIGTERM to forward; hard-kill the child.
    pub fn terminate(child: &mut std::process::Child) {
        let _ = child.kill();
    }
}

/// Exit code for a run that was interrupted but shut down cleanly (journal
/// flushed, in-flight records drained). Distinct from success (0), runtime
/// failure (1), and usage errors (2).
const EXIT_PARTIAL: u8 = 3;

/// Exit code for a run aborted cleanly by an I/O fault on a durability
/// path (ENOSPC or another write failure on the journal): in-flight
/// records drained, the journal is a valid prefix, nothing was emitted
/// that is not journaled. Rerun with `--resume` once the condition is
/// fixed.
const EXIT_IO_FAULT: u8 = 4;

/// Human label for the I/O failure classes the durability paths
/// distinguish (the exit-code taxonomy's "why", printed alongside code 4).
fn classify_io_error(e: &std::io::Error) -> &'static str {
    match e.kind() {
        std::io::ErrorKind::StorageFull => "disk full (ENOSPC)",
        std::io::ErrorKind::PermissionDenied => "permission denied",
        std::io::ErrorKind::WriteZero => "write made no progress",
        _ => "I/O error",
    }
}

/// `outln!`, minus the abort when the consumer hangs up: `cmr parse ... |
/// head` closes stdout early, and a write to a closed pipe must end the
/// output quietly instead of panicking.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

fn main() -> ExitCode {
    // Fault-injection builds only: arm the schedule in CMR_FAILPOINTS, if
    // any. Plain builds compile none of this (and carry no failpoints).
    #[cfg(feature = "failpoints")]
    if let Err(e) = cmr_failpoint::configure_from_env() {
        eprintln!("cmr: CMR_FAILPOINTS: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => generate(rest),
        "extract" => match extract(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "merge" => match merge(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "orchestrate" => match orchestrate(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "chaos" => match chaos(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "bench" => bench(rest),
        "parse" => parse(rest),
        "terms" => terms(rest),
        "lint" => match lint(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "serve" => match serve(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "loadtest" => match loadtest(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cmr: {e}");
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "cmr — clinical medical record information extraction (Zhou et al., ICDE 2005)\n\
         \n\
         USAGE:\n\
         \u{20}  cmr generate [--records N] [--seed S] [--style V] [--out DIR]\n\
         \u{20}      write synthetic consultation notes (and gold labels as JSON);\n\
         \u{20}      --out - streams records as NDJSON to stdout instead\n\
         \u{20}  cmr extract [--jobs N] [--queue-depth Q] [--stats] [--fail-fast]\n\
         \u{20}              [--journal FILE [--resume] [--compact-every N]] [--retries N]\n\
         \u{20}              [--quarantine FILE] [--timeout-ms MS] [--max-sentences N]\n\
         \u{20}              [--ndjson] [--shard i/N] [--out FILE] [--metrics FILE] FILE...\n\
         \u{20}      extract structured records from note files, one JSON object per line,\n\
         \u{20}      in input order (byte-identical for any --jobs; 0 = one per core);\n\
         \u{20}      FILE of - reads NDJSON records (objects with a \"text\" field, or\n\
         \u{20}      JSON strings) from stdin, --ndjson streams the same format from a\n\
         \u{20}      file in O(queue) memory; --out writes records to FILE instead of\n\
         \u{20}      stdout and --metrics writes the metrics JSON to FILE;\n\
         \u{20}      --shard i/N processes only records with index % N == i (0-based;\n\
         \u{20}      needs --ndjson), for `cmr merge` to recombine; --stats prints\n\
         \u{20}      metrics JSON to stderr; --journal writes a crash-safe NDJSON run\n\
         \u{20}      journal, --resume replays it and finishes only the remaining\n\
         \u{20}      records (output stays byte-identical to an uninterrupted run), and\n\
         \u{20}      --compact-every N truncates the journal to a snapshot line every N\n\
         \u{20}      records so resume replays O(remainder), not O(completed);\n\
         \u{20}      --retries retries transient failures with backoff and --quarantine\n\
         \u{20}      files records that still fail; --timeout-ms sets a per-record\n\
         \u{20}      wall-clock deadline enforced by a watchdog; SIGINT/SIGTERM drain\n\
         \u{20}      in-flight records, flush the journal, and exit 3 (partial run); a\n\
         \u{20}      journal write failure (e.g. ENOSPC) drains and exits 4 (clean I/O\n\
         \u{20}      abort, resumable)\n\
         \u{20}  cmr merge --dir DIR --shards N [--out FILE] [--metrics FILE]\n\
         \u{20}            [--quarantine FILE]\n\
         \u{20}      recombine the artifacts of an N-way sharded run (DIR/shard-i.*)\n\
         \u{20}      into what an unsharded run would have produced: outputs round-robin\n\
         \u{20}      interleaved in input order, metrics summed, quarantines globally\n\
         \u{20}      ordered with kill/resume duplicates dropped\n\
         \u{20}  cmr orchestrate --shards N --dir DIR [--workers K] [--jobs J]\n\
         \u{20}                  [--compact-every N] [--max-restarts R] [--backoff-ms MS]\n\
         \u{20}                  [--out FILE] [--metrics FILE] [--quarantine FILE] CORPUS\n\
         \u{20}      run an N-way sharded extraction of the NDJSON CORPUS under a crash\n\
         \u{20}      supervisor: at most K shard subprocesses at a time (0 = all), each\n\
         \u{20}      journaled in DIR; a shard that dies (signal, panic, exit 4) is\n\
         \u{20}      restarted from its journal with exponential backoff, up to R times;\n\
         \u{20}      when every shard completes the artifacts are merged as `cmr merge`\n\
         \u{20}      would; SIGINT/SIGTERM forward to the shards, drain, and exit 3\n\
         \u{20}  cmr chaos [--noise SPEC] [--seed S] [--records N] [--jobs N] [--stats] [--out FILE]\n\
         \u{20}      corrupt the gold corpus at each noise level (SPEC: `0.3`, `0,0.1,0.3`,\n\
         \u{20}      or `A..B[:STEP]`), extract it, and print the degradation curve;\n\
         \u{20}      --stats adds per-tier field counts, --out writes the report as JSON\n\
         \u{20}      (- for stdout); exits 2 if any worker panicked\n\
         \u{20}  cmr chaos --io-faults standard|SPEC [--seed S] [--records N] [--jobs N] [--out FILE]\n\
         \u{20}      (builds with --features failpoints only) run each seeded I/O fault\n\
         \u{20}      schedule (SPEC in the CMR_FAILPOINTS grammar, e.g.\n\
         \u{20}      `journal::append=enospc@3`) against journaled extraction + resume\n\
         \u{20}      and a service burst; exits 2 on any invariant violation (lost or\n\
         \u{20}      duplicated record, divergent resume, non-deterministic replay)\n\
         \u{20}  cmr bench [--records N] [--seed S] [--repeats R] [--jobs N] [--out FILE]\n\
         \u{20}            [--baseline FILE] [--label TEXT] [--check FILE] [--threshold F]\n\
         \u{20}            [--scaling jobs=1..N] [--check-scaling]\n\
         \u{20}      run the perf harness over gold + generated corpora and write a JSON\n\
         \u{20}      report (notes/sec, ns/field, cache hit rates, allocs/note, peak RSS);\n\
         \u{20}      --baseline embeds FILE's headline numbers; --check FILE exits 1 when\n\
         \u{20}      throughput regresses more than --threshold (default 0.25) vs FILE;\n\
         \u{20}      --scaling sweeps the engine at each worker count and prints the\n\
         \u{20}      per-jobs table; --check-scaling exits 1 when jobs=2 falls below\n\
         \u{20}      95% of serial throughput (skips with a notice on 1-CPU machines)\n\
         \u{20}  cmr parse \"SENTENCE\"\n\
         \u{20}      print the link grammar linkage diagram and constituents\n\
         \u{20}  cmr terms \"TEXT\"\n\
         \u{20}      print the medical terms found in TEXT\n\
         \u{20}  cmr lint [--code] [--format human|json|sarif] [--deny notes|warnings|errors] [--no-color]\n\
         \u{20}      statically analyze the rule assets (dictionary, lexicon, ontology,\n\
         \u{20}      field specs, ID3 config); exits 1 when a finding reaches the --deny\n\
         \u{20}      threshold (default: errors)\n\
         \u{20}  cmr serve [--addr HOST:PORT] [--jobs N] [--queue-depth Q]\n\
         \u{20}            [--timeout-ms MS] [--max-sentences N] [--max-body-mb MB]\n\
         \u{20}      run the resident extraction service (POST /extract,\n\
         \u{20}      POST /extract/batch NDJSON, GET /health, GET /metrics); a full\n\
         \u{20}      queue answers 429 + Retry-After; SIGINT/SIGTERM drain in-flight\n\
         \u{20}      requests and exit 3\n\
         \u{20}  cmr loadtest [--addr HOST:PORT] [--concurrency N] [--duration SECS]\n\
         \u{20}               [--rps R] [--out FILE] [--check FILE] [--threshold F]\n\
         \u{20}      drive POST /extract closed-loop (or open-loop at --rps) and report\n\
         \u{20}      p50/p90/p99/p999 latency + error rates; --out writes the report as\n\
         \u{20}      JSON (- for stdout, e.g. BENCH_serve.json); --check exits 1 when\n\
         \u{20}      p99 regresses more than --threshold (default 0.5) vs FILE or any\n\
         \u{20}      5xx/transport error occurred"
    );
}

/// Parses `--flag value` pairs and `--switch` toggles; returns positionals.
/// A lone `-` is a positional (stdin), not a flag.
fn parse_flags(
    args: &[String],
    flags: &mut [(&str, &mut String)],
    switches: &mut [(&str, &mut bool)],
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if let Some(slot) = switches.iter_mut().find(|(n, _)| *n == name) {
                *slot.1 = true;
                continue;
            }
            let slot = flags
                .iter_mut()
                .find(|(n, _)| *n == name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            *slot.1 = value.clone();
        } else {
            positional.push(a.clone());
        }
    }
    Ok(positional)
}

fn generate(args: &[String]) -> Result<(), String> {
    let mut records = "50".to_string();
    let mut count = String::new();
    let mut seed = "2005".to_string();
    let mut style = "0".to_string();
    let mut out = "notes".to_string();
    parse_flags(
        args,
        &mut [
            ("records", &mut records),
            ("count", &mut count),
            ("seed", &mut seed),
            ("style", &mut style),
            ("out", &mut out),
        ],
        &mut [],
    )?;
    if !count.is_empty() {
        records = count;
    }
    let n: usize = records
        .parse()
        .map_err(|_| "--records must be an integer".to_string())?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| "--seed must be an integer".to_string())?;
    let style: f64 = style
        .parse()
        .map_err(|_| "--style must be a number".to_string())?;
    // A plan, not a built corpus: records are generated one at a time and
    // dropped after writing, so a million-note corpus streams in O(1)
    // memory while staying byte-identical to `CorpusBuilder::build`.
    let plan = CorpusBuilder::new()
        .records(n)
        .seed(seed)
        .style_variation(style)
        .plan();
    if out == "-" {
        // NDJSON streaming: one full gold record (text included) per line,
        // ready to pipe into `cmr extract -`.
        let stdout = std::io::stdout();
        let mut w = std::io::BufWriter::new(stdout.lock());
        for i in 0..plan.len() {
            let rec = plan.record(i);
            let json = serde_json::to_string(&rec).map_err(|e| e.to_string())?;
            writeln!(w, "{json}").map_err(|e| format!("writing stdout: {e}"))?;
        }
        w.flush().map_err(|e| format!("writing stdout: {e}"))?;
        return Ok(());
    }
    let dir = PathBuf::from(out);
    fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for i in 0..plan.len() {
        let rec = plan.record(i);
        let path = dir.join(format!("patient_{:03}.txt", rec.patient_id));
        fs::write(&path, &rec.text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        let gold = dir.join(format!("patient_{:03}.gold.json", rec.patient_id));
        let json = serde_json::to_string_pretty(&rec).map_err(|e| e.to_string())?;
        fs::write(&gold, json).map_err(|e| format!("writing {}: {e}", gold.display()))?;
    }
    outln!("wrote {n} notes (+ gold labels) to {}", dir.display());
    Ok(())
}

/// Where extraction's record lines land. Stdout is flushed per line —
/// a downstream consumer (or a post-crash inspection) sees every
/// completed record, and a closed pipe (`| head`) stops output without
/// panicking the batch. An `--out` file is buffered (flushed at
/// compaction points and at the end), and write errors are surfaced
/// instead of swallowed: a truncated shard output would poison the merge.
///
/// Every emitted line also feeds the rolling [`OutputFingerprint`], which
/// journal compaction snapshots so a resume can prove the output prefix
/// on disk is the one the discarded journal entries produced.
struct RecordSink {
    dest: SinkDest,
    failed: u64,
    fingerprint: OutputFingerprint,
    write_error: Option<std::io::Error>,
}

enum SinkDest {
    Stdout {
        w: std::io::StdoutLock<'static>,
        closed: bool,
    },
    File {
        w: std::io::BufWriter<fs::File>,
    },
}

impl RecordSink {
    fn stdout() -> RecordSink {
        RecordSink {
            dest: SinkDest::Stdout {
                w: std::io::stdout().lock(),
                closed: false,
            },
            failed: 0,
            fingerprint: OutputFingerprint::new(),
            write_error: None,
        }
    }

    fn file(f: fs::File) -> RecordSink {
        RecordSink {
            dest: SinkDest::File {
                w: std::io::BufWriter::new(f),
            },
            failed: 0,
            fingerprint: OutputFingerprint::new(),
            write_error: None,
        }
    }

    fn create(path: &str) -> Result<RecordSink, String> {
        let f = fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        Ok(RecordSink::file(f))
    }

    /// Continues the fingerprint from a compaction snapshot instead of
    /// from the empty stream.
    fn with_fingerprint(mut self, fingerprint: OutputFingerprint) -> RecordSink {
        self.fingerprint = fingerprint;
        self
    }

    /// One line per record, in input order: the record JSON, or an
    /// in-band error object so the stream stays one object per input.
    fn emit(&mut self, result: &Result<ExtractedRecord, EngineError>) {
        let line = match result {
            Ok(rec) => serde_json::to_string(rec).expect("record serializes"),
            Err(e) => {
                self.failed += 1;
                format!(
                    "{{\"error\":{}}}",
                    serde_json::to_string(&e.to_string()).expect("string serializes")
                )
            }
        };
        self.fingerprint.add_line(&line);
        match &mut self.dest {
            SinkDest::Stdout { w, closed } => {
                if !*closed && (writeln!(w, "{line}").is_err() || w.flush().is_err()) {
                    *closed = true;
                }
            }
            SinkDest::File { w } => {
                if self.write_error.is_none() {
                    if let Err(e) = writeln!(w, "{line}") {
                        self.write_error = Some(e);
                    }
                }
            }
        }
    }

    /// Pushes buffered lines to disk (no-op for stdout, which flushes
    /// per line). Compaction must call this first: once the journal
    /// entries are gone, the snapshot fingerprint is only honest about
    /// bytes that survive a crash.
    fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.dest {
            SinkDest::Stdout { .. } => Ok(()),
            SinkDest::File { w } => {
                if let Some(e) = self.write_error.take() {
                    return Err(e);
                }
                w.flush()
            }
        }
    }
}

/// Streams the cleaned note texts of an NDJSON corpus file, optionally
/// keeping only one shard's slice of the global index space. O(one line)
/// memory; the file can be re-read for a second pass (corpus hashing,
/// then feeding), which stdin cannot.
fn ndjson_notes(
    path: &str,
    shard: Option<ShardSpec>,
) -> Result<impl Iterator<Item = String> + Send, String> {
    let f = fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    Ok(std::io::BufReader::new(f)
        .lines()
        .map_while(Result::ok)
        .filter_map(|l| note_from_line(&l))
        .enumerate()
        .filter(move |(g, _)| shard.is_none_or(|s| s.owns(*g)))
        .map(|(_, text)| text))
}

fn extract(args: &[String]) -> Result<ExitCode, String> {
    let mut jobs = "1".to_string();
    let mut queue_depth = "32".to_string();
    let mut journal = String::new();
    let mut retries = "1".to_string();
    let mut quarantine = String::new();
    let mut timeout_ms = String::new();
    let mut max_sentences = String::new();
    let mut kill_after = String::new();
    let mut shard_spec = String::new();
    let mut out = "-".to_string();
    let mut metrics_out = String::new();
    let mut compact_every = String::new();
    let mut stats = false;
    let mut fail_fast = false;
    let mut resume = false;
    let mut ndjson = false;
    let inputs = parse_flags(
        args,
        &mut [
            ("jobs", &mut jobs),
            ("queue-depth", &mut queue_depth),
            ("journal", &mut journal),
            ("retries", &mut retries),
            ("quarantine", &mut quarantine),
            ("timeout-ms", &mut timeout_ms),
            ("max-sentences", &mut max_sentences),
            ("kill-after", &mut kill_after),
            ("shard", &mut shard_spec),
            ("out", &mut out),
            ("metrics", &mut metrics_out),
            ("compact-every", &mut compact_every),
        ],
        &mut [
            ("stats", &mut stats),
            ("fail-fast", &mut fail_fast),
            ("resume", &mut resume),
            ("ndjson", &mut ndjson),
        ],
    )?;
    if inputs.is_empty() {
        return Err("extract needs at least one file (or - for stdin NDJSON)".to_string());
    }
    if resume && journal.is_empty() {
        return Err("--resume needs --journal".to_string());
    }
    if !kill_after.is_empty() && journal.is_empty() {
        return Err("--kill-after needs --journal (it counts newly journaled records)".to_string());
    }
    if !compact_every.is_empty() && journal.is_empty() {
        return Err("--compact-every needs --journal".to_string());
    }
    if ndjson && inputs.len() != 1 {
        return Err("--ndjson takes exactly one corpus FILE".to_string());
    }
    let jobs: usize = jobs
        .parse()
        .map_err(|_| "--jobs must be an integer".to_string())?;
    let queue_depth: usize = queue_depth
        .parse()
        .map_err(|_| "--queue-depth must be an integer".to_string())?;
    let retries: u32 = retries
        .parse()
        .map_err(|_| "--retries must be an integer".to_string())?;
    let parse_opt = |name: &str, value: &str| -> Result<Option<u64>, String> {
        if value.is_empty() {
            Ok(None)
        } else {
            value
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} must be an integer"))
        }
    };
    let timeout_ms = parse_opt("timeout-ms", &timeout_ms)?;
    let max_sentences = parse_opt("max-sentences", &max_sentences)?;
    let kill_after = parse_opt("kill-after", &kill_after)?;
    let compact_every = parse_opt("compact-every", &compact_every)?.unwrap_or(0);
    let shard: Option<ShardSpec> = if shard_spec.is_empty() {
        None
    } else {
        Some(ShardSpec::parse(&shard_spec)?)
    };
    let from_stdin = inputs.len() == 1 && inputs[0] == "-";
    // The corpus file of a streamed (--ndjson) run; stdin stays the
    // materialized path because it cannot be re-read for a second pass.
    let ndjson_file: Option<String> = if ndjson && !from_stdin {
        Some(inputs[0].clone())
    } else {
        None
    };
    if shard.is_some() && ndjson_file.is_none() {
        return Err("--shard needs --ndjson with a corpus file (a re-readable input)".to_string());
    }
    let cfg = EngineConfig {
        jobs,
        queue_depth: queue_depth.max(1),
        fail_fast,
        max_record_millis: timeout_ms,
        max_record_sentences: max_sentences.map(|n| n as usize),
        retry: RetryPolicy {
            max_attempts: retries.max(1),
            ..RetryPolicy::default()
        },
        ..EngineConfig::default()
    };
    let shutdown_flag = shutdown::install();
    let mut engine = Engine::new(cfg.clone(), Schema::paper(), Ontology::full())
        .with_shutdown(std::sync::Arc::clone(&shutdown_flag));
    if !quarantine.is_empty() {
        let qpath = PathBuf::from(&quarantine);
        // A resumed run appends: entries from the killed attempt survive,
        // and `cmr merge` dedupes the double-quarantine that a kill
        // between quarantine-append and journal-append leaves behind.
        let file = if resume {
            QuarantineFile::open_append(&qpath)
        } else {
            QuarantineFile::create(&qpath)
        }
        .map_err(|e| format!("opening {quarantine}: {e}"))?;
        // Sharded entries carry their *global* corpus index, so merged
        // quarantine files read like an unsharded run's.
        let file = match shard {
            Some(s) => file.with_index_mapping(s.index, s.total),
            None => file,
        };
        engine = engine.with_quarantine(file);
    }

    let (sink, metrics, partial) = if !journal.is_empty() {
        // Journaled (durable) run. The manifest fingerprints the corpus
        // so a resume against different input is rejected. An --ndjson
        // file corpus streams twice (hash pass, then feed pass) in
        // O(one record) memory; stdin and note files are materialized as
        // before (stdin cannot be re-read, and argv-sized file lists are
        // not the corpus-scale path).
        let (manifest, total, texts): (RunManifest, usize, Option<Vec<String>>) =
            if let Some(corpus) = &ndjson_file {
                let mut hasher = CorpusHasher::new();
                for note in ndjson_notes(corpus, shard)? {
                    hasher.add(&note);
                }
                let total = hasher.records();
                (
                    RunManifest::for_corpus(&cfg, hasher.finish(), total),
                    total,
                    None,
                )
            } else {
                let texts: Vec<String> = if from_stdin {
                    std::io::stdin()
                        .lock()
                        .lines()
                        .map_while(Result::ok)
                        .filter_map(|l| note_from_line(&l))
                        .collect()
                } else {
                    let mut texts = Vec::with_capacity(inputs.len());
                    for path in &inputs {
                        texts.push(
                            fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
                        );
                    }
                    texts
                };
                let total = texts.len();
                (RunManifest::for_run(&cfg, &texts), total, Some(texts))
            };
        let jpath = PathBuf::from(&journal);
        // A journal that died at birth — the crash or ENOSPC hit before
        // the manifest line was complete — holds nothing and proves
        // nothing was emitted (write-ahead: the manifest precedes every
        // record). Resume heals it by starting fresh, like a torn tail.
        let journal_born = jpath.exists()
            && fs::read(&jpath)
                .map(|bytes| bytes.contains(&b'\n'))
                .unwrap_or(false);
        // Deterministic counters reconstructed from replayed entries, so
        // a resumed run's metrics cover the whole shard (merged with the
        // engine's own snapshot below).
        let mut replay_metrics = EngineMetrics::default();
        let (mut writer, start, mut sink) = if resume && journal_born {
            let mut replay = JournalReplay::open(&jpath).map_err(|e| e.to_string())?;
            if let Some(why) = replay.manifest().mismatch(&manifest) {
                return Err(format!("cannot resume {journal}: {why}"));
            }
            let snapshot = replay.snapshot().cloned();
            let mut sink = match &snapshot {
                Some(snap) => {
                    // Compacted journal: the pre-snapshot records have no
                    // entries left to replay. The snapshot's rolling
                    // fingerprint carries the output identity across the
                    // gap.
                    let fp = OutputFingerprint::from_hex(&snap.output_fingerprint)
                        .ok_or_else(|| format!("cannot resume {journal}: corrupt snapshot"))?;
                    if out == "-" {
                        eprintln!(
                            "cmr: resuming a compacted journal to stdout: the {} record(s) \
                             before the snapshot were emitted by the previous run and are \
                             not replayed",
                            snap.completed
                        );
                        RecordSink::stdout().with_fingerprint(fp)
                    } else {
                        // Prove the --out file's prefix is the one the
                        // discarded entries produced, drop anything after
                        // it (un-journaled tail from the crash), and
                        // append.
                        let f = fs::File::open(&out).map_err(|e| {
                            format!(
                                "cannot resume a compacted journal without its output \
                                 file {out}: {e}"
                            )
                        })?;
                        let (valid_bytes, _) =
                            verify_output_prefix(&mut std::io::BufReader::new(f), snap)
                                .map_err(|e| format!("cannot resume {journal}: {e}"))?;
                        let mut f = fs::OpenOptions::new()
                            .write(true)
                            .open(&out)
                            .map_err(|e| format!("opening {out}: {e}"))?;
                        f.set_len(valid_bytes)
                            .and_then(|()| f.seek(std::io::SeekFrom::Start(valid_bytes)))
                            .map_err(|e| format!("truncating {out}: {e}"))?;
                        RecordSink::file(f).with_fingerprint(fp)
                    }
                }
                None => {
                    if out == "-" {
                        RecordSink::stdout()
                    } else {
                        // Uncompacted resume rebuilds the output file from
                        // the full replay.
                        RecordSink::create(&out)?
                    }
                }
            };
            // Stream the journaled prefix straight to output — O(one
            // entry) memory — so the final output is byte-identical to an
            // uninterrupted run.
            let mut replayed = 0usize;
            while let Some(step) = replay.next_entry() {
                let entry = step.map_err(|e| e.to_string())?;
                replay_metrics.absorb_replayed(&entry.output);
                sink.emit(&entry.output);
                replayed += 1;
            }
            let start = replay.completed();
            eprintln!(
                "cmr: resuming {journal}: {start}/{total} record(s) already journaled \
                 ({replayed} replayed)"
            );
            let writer = match JournalWriter::append_to(&jpath, replay.valid_len()) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!(
                        "cmr: reopening {journal}: {} ({e})\n\
                         cmr: no records were processed; the journal is untouched",
                        classify_io_error(&e)
                    );
                    return Ok(ExitCode::from(EXIT_IO_FAULT));
                }
            };
            (writer, start, sink)
        } else {
            let writer = match JournalWriter::create(&jpath, &manifest) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!(
                        "cmr: creating {journal}: {} ({e})\n\
                         cmr: no records were processed",
                        classify_io_error(&e)
                    );
                    return Ok(ExitCode::from(EXIT_IO_FAULT));
                }
            };
            let sink = if out == "-" {
                RecordSink::stdout()
            } else {
                RecordSink::create(&out)?
            };
            (writer, 0, sink)
        };

        let feed: Box<dyn Iterator<Item = String> + Send> = match (ndjson_file.as_ref(), texts) {
            (Some(corpus), _) => Box::new(ndjson_notes(corpus, shard)?.skip(start)),
            (None, Some(texts)) => Box::new(texts.into_iter().skip(start)),
            (None, None) => unreachable!("materialized paths always carry texts"),
        };
        let mut abort_error: Option<String> = None;
        let mut newly_journaled = 0u64;
        let mut seen = 0usize;
        let fault_flag = std::sync::Arc::clone(&shutdown_flag);
        let metrics = engine.extract_stream(feed, |idx, result| {
            let entry = JournalEntry {
                index: start + idx,
                output: result,
            };
            // Write-ahead ordering: the journal line lands before the
            // record becomes visible on the output, so every record a
            // consumer has seen is recoverable after a crash. A failed
            // append (ENOSPC, torn write) therefore aborts cleanly: raise
            // the shutdown flag so the pool drains, and emit nothing
            // further — an un-journaled record in the output would be
            // lost to resume.
            if abort_error.is_none() {
                if let Err(e) = writer.append(&entry) {
                    abort_error = Some(format!(
                        "writing {journal}: {} ({e})",
                        classify_io_error(&e)
                    ));
                    fault_flag.store(true, std::sync::atomic::Ordering::Relaxed);
                }
            }
            if abort_error.is_some() {
                return;
            }
            sink.emit(&entry.output);
            if let Some(e) = sink.write_error.take() {
                // The inverse failure: the record is journaled but its
                // output line is not durable. Abort cleanly; resume
                // rebuilds the output from the journal.
                abort_error = Some(format!("writing {out}: {} ({e})", classify_io_error(&e)));
                fault_flag.store(true, std::sync::atomic::Ordering::Relaxed);
                return;
            }
            seen += 1;
            newly_journaled += 1;
            if kill_after == Some(newly_journaled) {
                // Crash-injection hook for the durability tests: die hard
                // (no unwinding, no flushes) right after journaling the
                // N-th new record, like a `kill -9` at the worst moment.
                std::process::abort();
            }
            if compact_every > 0 && newly_journaled.is_multiple_of(compact_every) {
                // The output must be on disk before the entry lines
                // vanish: after compaction the journal proves only the
                // snapshot, whose fingerprint must describe bytes that
                // survive a crash.
                if let Err(e) = sink.flush() {
                    abort_error = Some(format!("writing {out}: {} ({e})", classify_io_error(&e)));
                    fault_flag.store(true, std::sync::atomic::Ordering::Relaxed);
                    return;
                }
                let snap = Snapshot {
                    completed: start + seen,
                    output_fingerprint: sink.fingerprint.as_hex(),
                };
                match JournalWriter::compact(&jpath, &manifest, &snap) {
                    Ok(compacted) => writer = compacted,
                    Err(e) => {
                        // The old journal is untouched on error — still a
                        // valid prefix, so this aborts exactly like a
                        // failed append.
                        abort_error = Some(format!(
                            "compacting {journal}: {} ({e})",
                            classify_io_error(&e)
                        ));
                        fault_flag.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
        });
        let mut metrics = metrics;
        metrics.merge(&replay_metrics);
        let completed = start + seen;
        if abort_error.is_none() {
            if let Err(e) = sink.flush() {
                abort_error = Some(format!("writing {out}: {} ({e})", classify_io_error(&e)));
            }
        }
        if let Some(e) = abort_error {
            eprintln!(
                "cmr: {e}\n\
                 cmr: aborted cleanly — {completed}/{total} record(s) journaled, \
                 nothing emitted beyond the journal; fix the underlying condition \
                 and rerun with --journal {journal} --resume"
            );
            if stats {
                if let Ok(json) = serde_json::to_string_pretty(&metrics) {
                    eprintln!("{json}");
                }
            }
            return Ok(ExitCode::from(EXIT_IO_FAULT));
        }
        if completed < total {
            eprintln!(
                "cmr: interrupted — {completed}/{total} record(s) journaled; \
                 rerun with --journal {journal} --resume to finish"
            );
        }
        (sink, metrics, completed < total)
    } else if let Some(corpus) = &ndjson_file {
        // Streamed, un-journaled corpus run: one pass, O(queue) memory.
        let mut sink = if out == "-" {
            RecordSink::stdout()
        } else {
            RecordSink::create(&out)?
        };
        let metrics = engine.extract_stream(ndjson_notes(corpus, shard)?, |_idx, result| {
            sink.emit(&result);
        });
        sink.flush().map_err(|e| format!("writing {out}: {e}"))?;
        let partial = shutdown_flag.load(std::sync::atomic::Ordering::Relaxed);
        (sink, metrics, partial)
    } else if from_stdin {
        // Stream NDJSON records from stdin through the engine under
        // backpressure: at most `queue_depth` records are buffered.
        // (`StdinLock` is not `Send`, and the feeder thread consumes the
        // iterator — so take the lock per line.)
        let mut sink = if out == "-" {
            RecordSink::stdout()
        } else {
            RecordSink::create(&out)?
        };
        let stdin = std::io::stdin();
        let lines = std::iter::from_fn(move || {
            let mut buf = String::new();
            match stdin.lock().read_line(&mut buf) {
                Ok(0) | Err(_) => None,
                Ok(_) => Some(buf),
            }
        })
        .filter_map(|l| note_from_line(&l));
        let metrics = engine.extract_stream(lines, |_idx, result| {
            sink.emit(&result);
        });
        sink.flush().map_err(|e| format!("writing {out}: {e}"))?;
        // Without a known corpus length, "partial" means the stop was
        // signal-initiated rather than end-of-input.
        let partial = shutdown_flag.load(std::sync::atomic::Ordering::Relaxed);
        (sink, metrics, partial)
    } else {
        // Read the files up front so I/O errors fail the command before
        // any output is produced.
        let mut texts = Vec::with_capacity(inputs.len());
        for path in &inputs {
            texts.push(fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?);
        }
        let total = texts.len();
        let mut sink = if out == "-" {
            RecordSink::stdout()
        } else {
            RecordSink::create(&out)?
        };
        let mut seen = 0usize;
        let metrics = engine.extract_stream(texts.into_iter(), |_idx, result| {
            sink.emit(&result);
            seen += 1;
        });
        sink.flush().map_err(|e| format!("writing {out}: {e}"))?;
        if seen < total {
            eprintln!("cmr: interrupted — {seen}/{total} record(s) extracted");
        }
        (sink, metrics, seen < total)
    };

    if !metrics_out.is_empty() {
        let json = serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?;
        fs::write(&metrics_out, format!("{json}\n"))
            .map_err(|e| format!("writing {metrics_out}: {e}"))?;
    }
    if stats {
        // `cli::metrics-dump`: the last write of a batch; a fault here
        // must cost the stats line only, never the records above it.
        if let Some(inj) = cmr_failpoint::io_inject("cli::metrics-dump") {
            eprintln!("cmr: metrics dump failed: {}", inj.into_io_error());
        } else {
            let json = serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?;
            eprintln!("{json}");
        }
    }
    if sink.failed > 0 {
        eprintln!(
            "cmr: {} record(s) failed (see in-band \"error\" objects)",
            sink.failed
        );
    }
    Ok(if partial {
        ExitCode::from(EXIT_PARTIAL)
    } else {
        ExitCode::SUCCESS
    })
}

/// Path of one shard's artifact inside the shared run directory, by the
/// convention `cmr orchestrate` writes and `cmr merge` reads:
/// `DIR/shard-<i>.<suffix>`.
fn shard_path(dir: &str, index: usize, suffix: &str) -> PathBuf {
    PathBuf::from(dir).join(format!("shard-{index}.{suffix}"))
}

/// Recombines the artifacts of an `n`-way sharded run under `dir` into
/// unsharded-identical files: outputs round-robin interleaved (required),
/// metrics summed and quarantines deduped (each optional, gated on a
/// destination path). Returns the merged record-line count.
fn merge_artifacts(
    dir: &str,
    n: usize,
    out: &str,
    metrics_out: &str,
    quarantine_out: &str,
) -> Result<u64, String> {
    let mut readers = Vec::with_capacity(n);
    for i in 0..n {
        let p = shard_path(dir, i, "out.ndjson");
        let f = fs::File::open(&p).map_err(|e| format!("opening {}: {e}", p.display()))?;
        readers.push(std::io::BufReader::new(f));
    }
    let lines = if out == "-" {
        let stdout = std::io::stdout();
        let mut w = stdout.lock();
        merge_outputs(&mut readers, &mut w).map_err(|e| e.to_string())?
    } else {
        let f = fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
        let mut w = std::io::BufWriter::new(f);
        let lines = merge_outputs(&mut readers, &mut w).map_err(|e| e.to_string())?;
        w.flush().map_err(|e| format!("writing {out}: {e}"))?;
        lines
    };
    if !metrics_out.is_empty() {
        let mut total = EngineMetrics::default();
        for i in 0..n {
            let p = shard_path(dir, i, "metrics.json");
            let json =
                fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let m: EngineMetrics =
                serde_json::from_str(&json).map_err(|e| format!("parsing {}: {e}", p.display()))?;
            total.merge(&m);
        }
        let json = serde_json::to_string_pretty(&total).map_err(|e| e.to_string())?;
        fs::write(metrics_out, format!("{json}\n"))
            .map_err(|e| format!("writing {metrics_out}: {e}"))?;
    }
    if !quarantine_out.is_empty() {
        let mut entries = Vec::new();
        for i in 0..n {
            let p = shard_path(dir, i, "quarantine.ndjson");
            // A shard that never quarantined anything may simply have no
            // file (orchestrate always passes --quarantine, but hand-run
            // shards might not).
            if p.exists() {
                entries.extend(
                    read_quarantine(&p).map_err(|e| format!("reading {}: {e}", p.display()))?,
                );
            }
        }
        let merged = merge_quarantine(entries);
        let mut body = String::new();
        for e in &merged {
            body.push_str(&serde_json::to_string(e).map_err(|e| e.to_string())?);
            body.push('\n');
        }
        fs::write(quarantine_out, body).map_err(|e| format!("writing {quarantine_out}: {e}"))?;
        eprintln!(
            "cmr: merged quarantine: {} record(s) after dedupe",
            merged.len()
        );
    }
    Ok(lines)
}

/// `cmr merge`: recombine an N-way sharded run's artifacts into what the
/// unsharded run would have produced.
fn merge(args: &[String]) -> Result<ExitCode, String> {
    let mut dir = String::new();
    let mut shards = String::new();
    let mut out = "-".to_string();
    let mut metrics_out = String::new();
    let mut quarantine_out = String::new();
    let extra = parse_flags(
        args,
        &mut [
            ("dir", &mut dir),
            ("shards", &mut shards),
            ("out", &mut out),
            ("metrics", &mut metrics_out),
            ("quarantine", &mut quarantine_out),
        ],
        &mut [],
    )?;
    if !extra.is_empty() {
        return Err(format!("merge takes no positional arguments: {extra:?}"));
    }
    if dir.is_empty() {
        return Err("merge needs --dir (the shard artifact directory)".to_string());
    }
    let n: usize = shards
        .parse()
        .map_err(|_| "--shards must be an integer >= 1".to_string())?;
    if n == 0 {
        return Err("--shards must be an integer >= 1".to_string());
    }
    let lines = merge_artifacts(&dir, n, &out, &metrics_out, &quarantine_out)?;
    eprintln!("cmr: merged {lines} record(s) from {n} shard(s)");
    Ok(ExitCode::SUCCESS)
}

/// Spawns one shard subprocess of an `n`-way orchestrated run. `--resume`
/// is always passed: a fresh shard has no journal and starts from zero,
/// a restarted one picks up where its journal proves it left off.
fn spawn_shard(
    exe: &Path,
    corpus: &str,
    dir: &str,
    index: usize,
    n: usize,
    jobs: &str,
    compact_every: &str,
) -> std::io::Result<std::process::Child> {
    if let Some(inj) = cmr_failpoint::io_inject("orchestrate::spawn") {
        return Err(inj.into_io_error());
    }
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("extract")
        .arg("--ndjson")
        .arg("--shard")
        .arg(format!("{index}/{n}"))
        .arg("--jobs")
        .arg(jobs)
        .arg("--journal")
        .arg(shard_path(dir, index, "journal"))
        .arg("--resume")
        .arg("--out")
        .arg(shard_path(dir, index, "out.ndjson"))
        .arg("--metrics")
        .arg(shard_path(dir, index, "metrics.json"))
        .arg("--quarantine")
        .arg(shard_path(dir, index, "quarantine.ndjson"));
    if !compact_every.is_empty() {
        cmd.arg("--compact-every").arg(compact_every);
    }
    cmd.arg(corpus)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit());
    cmd.spawn()
}

/// `cmr orchestrate`: crash-supervised sharded extraction. Spawns the N
/// shards as subprocesses (at most `--workers` at a time), restarts any
/// that die — signal kill, panic, or a clean I/O abort (exit 4) — from
/// their journals with exponential backoff, gives a shard up after
/// `--max-restarts` failed attempts, and merges the artifacts once every
/// shard completes. SIGINT/SIGTERM forward to the shards so each drains
/// and flushes its own journal, then the supervisor exits 3.
fn orchestrate(args: &[String]) -> Result<ExitCode, String> {
    use std::time::{Duration, Instant};

    let mut shards = "4".to_string();
    let mut workers = "0".to_string();
    let mut dir = String::new();
    let mut jobs = "1".to_string();
    let mut compact_every = String::new();
    let mut max_restarts = "3".to_string();
    let mut backoff_ms = "200".to_string();
    let mut out = "-".to_string();
    let mut metrics_out = String::new();
    let mut quarantine_out = String::new();
    let inputs = parse_flags(
        args,
        &mut [
            ("shards", &mut shards),
            ("workers", &mut workers),
            ("dir", &mut dir),
            ("jobs", &mut jobs),
            ("compact-every", &mut compact_every),
            ("max-restarts", &mut max_restarts),
            ("backoff-ms", &mut backoff_ms),
            ("out", &mut out),
            ("metrics", &mut metrics_out),
            ("quarantine", &mut quarantine_out),
        ],
        &mut [],
    )?;
    if inputs.len() != 1 {
        return Err("orchestrate needs exactly one NDJSON corpus FILE".to_string());
    }
    let corpus = inputs[0].clone();
    if corpus == "-" {
        return Err(
            "orchestrate needs a corpus file (shards re-read it; stdin is not re-readable)"
                .to_string(),
        );
    }
    if dir.is_empty() {
        return Err("orchestrate needs --dir (the shard artifact directory)".to_string());
    }
    let n: usize = shards
        .parse()
        .map_err(|_| "--shards must be an integer >= 1".to_string())?;
    if n == 0 {
        return Err("--shards must be an integer >= 1".to_string());
    }
    let workers: usize = workers
        .parse()
        .map_err(|_| "--workers must be an integer (0 = all shards at once)".to_string())?;
    let workers = if workers == 0 { n } else { workers };
    let _: usize = jobs
        .parse()
        .map_err(|_| "--jobs must be an integer".to_string())?;
    if !compact_every.is_empty() {
        let _: u64 = compact_every
            .parse()
            .map_err(|_| "--compact-every must be an integer".to_string())?;
    }
    let max_restarts: u32 = max_restarts
        .parse()
        .map_err(|_| "--max-restarts must be an integer".to_string())?;
    let backoff_ms: u64 = backoff_ms
        .parse()
        .map_err(|_| "--backoff-ms must be an integer".to_string())?;
    fs::create_dir_all(&dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let exe = std::env::current_exe().map_err(|e| format!("locating the cmr executable: {e}"))?;
    let shutdown_flag = shutdown::install();

    struct ShardState {
        child: Option<std::process::Child>,
        attempts: u32,
        done: bool,
        gave_up: bool,
        not_before: Instant,
    }
    let now = Instant::now();
    let mut states: Vec<ShardState> = (0..n)
        .map(|_| ShardState {
            child: None,
            attempts: 0,
            done: false,
            gave_up: false,
            not_before: now,
        })
        .collect();
    // One failure-accounting path for every way an attempt can die:
    // schedule a backed-off restart, or give the shard up once the
    // retry budget is spent.
    let record_failure = |s: &mut ShardState, i: usize, why: &str| {
        s.attempts += 1;
        if s.attempts > max_restarts {
            s.gave_up = true;
            eprintln!(
                "cmr: shard {i}/{n}: {why}; retry budget ({max_restarts}) exhausted — giving up"
            );
        } else {
            let delay = backoff_ms
                .saturating_mul(1 << (s.attempts - 1).min(6))
                .min(30_000);
            s.not_before = Instant::now() + Duration::from_millis(delay);
            eprintln!(
                "cmr: shard {i}/{n}: {why}; restart {}/{max_restarts} in {delay} ms \
                 (resuming from its journal)",
                s.attempts
            );
        }
    };

    loop {
        if shutdown_flag.load(std::sync::atomic::Ordering::Relaxed) {
            break;
        }
        // Reap finished children.
        for (i, state) in states.iter_mut().enumerate() {
            let Some(child) = state.child.as_mut() else {
                continue;
            };
            if let Some(inj) = cmr_failpoint::io_inject("orchestrate::wait") {
                // An injected wait failure loses track of the child; the
                // only safe recovery is to kill it and restart from the
                // journal, like any other dead shard.
                eprintln!("cmr: shard {i}/{n}: wait failed: {}", inj.into_io_error());
                let _ = child.kill();
                let _ = child.wait();
                state.child = None;
                record_failure(state, i, "supervisor lost the child");
                continue;
            }
            match child.try_wait() {
                Ok(None) => {}
                Ok(Some(status)) => {
                    state.child = None;
                    match status.code() {
                        Some(0) => {
                            state.done = true;
                            eprintln!("cmr: shard {i}/{n} completed");
                        }
                        Some(2) => {
                            // A usage error is deterministic: the same
                            // argv fails the same way every time, so
                            // restarting is noise.
                            state.gave_up = true;
                            eprintln!("cmr: shard {i}/{n}: exit 2 (usage) — not restartable");
                        }
                        Some(code) => {
                            record_failure(state, i, &format!("exit {code}"));
                        }
                        None => {
                            record_failure(state, i, "killed by a signal");
                        }
                    }
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    state.child = None;
                    record_failure(state, i, &format!("wait failed: {e}"));
                }
            }
        }
        // Spawn (or restart) shards while worker slots are free.
        let mut running = states.iter().filter(|s| s.child.is_some()).count();
        for (i, state) in states.iter_mut().enumerate() {
            if running >= workers {
                break;
            }
            let ready = state.child.is_none()
                && !state.done
                && !state.gave_up
                && Instant::now() >= state.not_before;
            if !ready {
                continue;
            }
            match spawn_shard(&exe, &corpus, &dir, i, n, &jobs, &compact_every) {
                Ok(child) => {
                    state.child = Some(child);
                    running += 1;
                }
                Err(e) => {
                    record_failure(state, i, &format!("spawn failed: {e}"));
                }
            }
        }
        if states.iter().all(|s| s.done || s.gave_up) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    if shutdown_flag.load(std::sync::atomic::Ordering::Relaxed) {
        // Drain: forward the signal so each shard flushes its journal
        // and exits cleanly, then collect them all.
        for s in states.iter_mut() {
            if let Some(child) = s.child.as_mut() {
                shutdown::terminate(child);
            }
        }
        for s in states.iter_mut() {
            if let Some(mut child) = s.child.take() {
                let _ = child.wait();
            }
        }
        let done = states.iter().filter(|s| s.done).count();
        eprintln!(
            "cmr: interrupted — {done}/{n} shard(s) complete, journals flushed; \
             rerun the same command to resume"
        );
        return Ok(ExitCode::from(EXIT_PARTIAL));
    }

    let failed: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.gave_up)
        .map(|(i, _)| i)
        .collect();
    if !failed.is_empty() {
        eprintln!(
            "cmr: shard(s) {failed:?} did not complete; their journals and partial \
             artifacts are in {dir} — fix the underlying condition and rerun to resume"
        );
        return Ok(ExitCode::from(1));
    }
    let lines = merge_artifacts(&dir, n, &out, &metrics_out, &quarantine_out)?;
    eprintln!("cmr: all {n} shard(s) completed — merged {lines} record(s)");
    Ok(ExitCode::SUCCESS)
}

/// `cmr serve`: the resident extraction service. Runs until SIGINT or
/// SIGTERM, then drains (in-flight and queued requests complete, the
/// listener closes) and exits with the partial-run code — a drained stop
/// is an interruption, not a completed batch.
fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut jobs = "0".to_string();
    let mut queue_depth = "64".to_string();
    let mut timeout_ms = String::new();
    let mut max_sentences = String::new();
    let mut max_body_mb = "8".to_string();
    let extra = parse_flags(
        args,
        &mut [
            ("addr", &mut addr),
            ("jobs", &mut jobs),
            ("queue-depth", &mut queue_depth),
            ("timeout-ms", &mut timeout_ms),
            ("max-sentences", &mut max_sentences),
            ("max-body-mb", &mut max_body_mb),
        ],
        &mut [],
    )?;
    if !extra.is_empty() {
        return Err(format!("serve takes no positional arguments: {extra:?}"));
    }
    let parse_opt = |name: &str, value: &str| -> Result<Option<u64>, String> {
        if value.is_empty() {
            Ok(None)
        } else {
            value
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} must be an integer"))
        }
    };
    let cfg = ServeConfig {
        addr,
        jobs: jobs
            .parse()
            .map_err(|_| "--jobs must be an integer".to_string())?,
        queue_depth: queue_depth
            .parse()
            .map_err(|_| "--queue-depth must be an integer".to_string())?,
        timeout_ms: parse_opt("timeout-ms", &timeout_ms)?,
        max_sentences: parse_opt("max-sentences", &max_sentences)?.map(|n| n as usize),
        max_body_bytes: parse_opt("max-body-mb", &max_body_mb)?.unwrap_or(8) as usize * 1024 * 1024,
    };
    let shutdown_flag = shutdown::install();
    let server = Server::bind(cfg, shutdown_flag).map_err(|e| e.to_string())?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("resolving listen address: {e}"))?;
    eprintln!("cmr: serving on {addr} (SIGINT/SIGTERM to drain and stop)");
    let summary = server.run().map_err(|e| format!("serve loop: {e}"))?;
    eprintln!(
        "cmr: drained — {} request(s) answered, {} rejected with 429",
        summary.requests, summary.rejected
    );
    Ok(ExitCode::from(EXIT_PARTIAL))
}

/// `cmr loadtest`: drive a running `cmr serve` and report latency
/// percentiles; optionally write `BENCH_serve.json` and gate on it.
fn loadtest(args: &[String]) -> Result<ExitCode, String> {
    use cmr::bench::loadtest::{check_latency_regression, run_loadtest, LoadConfig, LoadReport};

    let mut addr = "127.0.0.1:7171".to_string();
    let mut concurrency = "4".to_string();
    let mut duration = "10".to_string();
    let mut rps = String::new();
    let mut timeout_ms = "10000".to_string();
    let mut out = String::new();
    let mut check = String::new();
    let mut threshold = "0.5".to_string();
    let extra = parse_flags(
        args,
        &mut [
            ("addr", &mut addr),
            ("concurrency", &mut concurrency),
            ("duration", &mut duration),
            ("rps", &mut rps),
            ("timeout-ms", &mut timeout_ms),
            ("out", &mut out),
            ("check", &mut check),
            ("threshold", &mut threshold),
        ],
        &mut [],
    )?;
    if !extra.is_empty() {
        return Err(format!("loadtest takes no positional arguments: {extra:?}"));
    }
    let cfg = LoadConfig {
        addr,
        concurrency: concurrency
            .parse()
            .map_err(|_| "--concurrency must be an integer".to_string())?,
        duration_secs: duration
            .parse()
            .map_err(|_| "--duration must be a number (seconds)".to_string())?,
        rps: if rps.is_empty() {
            None
        } else {
            Some(
                rps.parse()
                    .map_err(|_| "--rps must be a number".to_string())?,
            )
        },
        timeout_ms: timeout_ms
            .parse()
            .map_err(|_| "--timeout-ms must be an integer".to_string())?,
        ..LoadConfig::default()
    };
    let threshold: f64 = threshold
        .parse()
        .map_err(|_| "--threshold must be a number".to_string())?;

    let report = run_loadtest(&cfg)?;
    eprintln!(
        "cmr: {} loop x{} for {:.1}s — {} ok ({:.1} req/s), {} rejected (429), \
         {} client 4xx, {} server 5xx, {} refused, {} transport error(s), {} stale retried",
        report.mode,
        report.concurrency,
        report.duration_secs,
        report.ok,
        report.throughput_rps,
        report.rejected,
        report.client_errors,
        report.server_errors,
        report.refused,
        report.transport_errors,
        report.retried_stale,
    );
    eprintln!(
        "cmr: latency p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  p999 {:.2}ms  max {:.2}ms",
        report.p50_us as f64 / 1000.0,
        report.p90_us as f64 / 1000.0,
        report.p99_us as f64 / 1000.0,
        report.p999_us as f64 / 1000.0,
        report.max_us as f64 / 1000.0,
    );

    if !out.is_empty() {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        if out == "-" {
            outln!("{json}");
        } else {
            fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("cmr: wrote loadtest report to {out}");
        }
    }
    if !check.is_empty() {
        let json = fs::read_to_string(&check).map_err(|e| format!("reading {check}: {e}"))?;
        let baseline: LoadReport =
            serde_json::from_str(&json).map_err(|e| format!("parsing {check}: {e}"))?;
        if let Err(msg) = check_latency_regression(&report, &baseline, threshold) {
            eprintln!("cmr: SERVE LATENCY REGRESSION vs {check}: {msg}");
            return Ok(ExitCode::from(1));
        }
        eprintln!("cmr: serve latency check vs {check} passed (threshold {threshold})");
    }
    Ok(ExitCode::SUCCESS)
}

fn chaos(args: &[String]) -> Result<ExitCode, String> {
    let mut noise = "0..0.5".to_string();
    let mut seed = "7".to_string();
    let mut records = "50".to_string();
    let mut jobs = "0".to_string();
    let mut out = String::new();
    let mut io_faults = String::new();
    let mut stats = false;
    let extra = parse_flags(
        args,
        &mut [
            ("noise", &mut noise),
            ("seed", &mut seed),
            ("records", &mut records),
            ("jobs", &mut jobs),
            ("out", &mut out),
            ("io-faults", &mut io_faults),
        ],
        &mut [("stats", &mut stats)],
    )?;
    if !extra.is_empty() {
        return Err(format!("chaos takes no positional arguments: {extra:?}"));
    }
    if !io_faults.is_empty() {
        return chaos_io_faults(&io_faults, &seed, &records, &jobs, &out);
    }
    let cfg = ChaosConfig {
        levels: parse_levels(&noise)?,
        seed: seed
            .parse()
            .map_err(|_| "--seed must be an integer".to_string())?,
        records: records
            .parse()
            .map_err(|_| "--records must be an integer".to_string())?,
        jobs: jobs
            .parse()
            .map_err(|_| "--jobs must be an integer".to_string())?,
    };
    // SIGINT/SIGTERM stop the sweep between noise levels; the finished
    // levels are still printed and written to --out below, marked
    // `"interrupted": true` in the JSON, instead of being lost.
    let interrupt = shutdown::install();
    let report = run_chaos_with(&cfg, Some(interrupt.as_ref()));

    outln!(
        "chaos sweep: {} records, seed {}, {} level(s)",
        report.records,
        report.seed,
        report.levels.len()
    );
    outln!("noise   num-P   num-R   num-F1  term-F1  parse-fail  degraded  failed");
    for l in &report.levels {
        outln!(
            "{:<7.2} {:<7.3} {:<7.3} {:<7.3} {:<8.3} {:<11} {:<9} {}",
            l.noise,
            l.numeric_precision,
            l.numeric_recall,
            l.numeric_f1,
            l.term_f1,
            l.parse_failures,
            l.degraded_records,
            l.failed_records
        );
    }
    if stats {
        outln!("\nnoise   link-grammar  pattern  salvage");
        for l in &report.levels {
            outln!(
                "{:<7.2} {:<13} {:<8} {}",
                l.noise,
                l.link_grammar_fields,
                l.pattern_fields,
                l.salvage_fields
            );
        }
    }
    if !out.is_empty() {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        if out == "-" {
            outln!("{json}");
        } else {
            fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("cmr: wrote chaos report to {out}");
        }
    }
    let panics = report.total_panics();
    if panics > 0 {
        return Err(format!("{panics} worker panic(s) during the sweep"));
    }
    if report.interrupted {
        eprintln!(
            "cmr: chaos sweep interrupted after {} of {} level(s); partial report flushed",
            report.levels.len(),
            cfg.levels.len()
        );
        return Ok(ExitCode::from(EXIT_PARTIAL));
    }
    Ok(ExitCode::SUCCESS)
}

/// `cmr chaos --io-faults`: the deterministic I/O fault sweep. Runs each
/// seeded fault schedule against an in-process journaled extraction
/// and/or a service burst and checks the robustness invariants (clean
/// containment, resume identity, exactly-once, replay determinism,
/// liveness). Requires a `--features failpoints` build.
fn chaos_io_faults(
    spec: &str,
    seed: &str,
    records: &str,
    jobs: &str,
    out: &str,
) -> Result<ExitCode, String> {
    use cmr::bench::iofaults::{run_io_faults, IoFaultConfig};
    let cfg = IoFaultConfig {
        spec: spec.to_string(),
        seed: seed
            .parse()
            .map_err(|_| "--seed must be an integer".to_string())?,
        records: records
            .parse()
            .map_err(|_| "--records must be an integer".to_string())?,
        jobs: jobs
            .parse()
            .map_err(|_| "--jobs must be an integer".to_string())?,
    };
    let report = run_io_faults(&cfg)?;
    outln!(
        "io-fault sweep: {} record(s), seed {}, {} schedule(s)",
        report.records,
        report.seed,
        report.schedules.len()
    );
    outln!("kind        fires  abort  ok  schedule");
    for s in &report.schedules {
        outln!(
            "{:<11} {:<6} {:<6} {:<3} {}",
            s.kind,
            s.fires,
            if s.clean_abort { "yes" } else { "no" },
            if s.violations.is_empty() {
                "ok"
            } else {
                "FAIL"
            },
            s.schedule
        );
        for v in &s.violations {
            outln!("            violation: {v}");
        }
    }
    if !out.is_empty() {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        if out == "-" {
            outln!("{json}");
        } else {
            fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("cmr: wrote io-fault report to {out}");
        }
    }
    let violations = report.total_violations();
    if violations > 0 {
        return Err(format!(
            "{violations} invariant violation(s) in the I/O fault sweep"
        ));
    }
    Ok(ExitCode::SUCCESS)
}

fn bench(args: &[String]) -> Result<(), String> {
    use cmr::bench::perf::{self, BaselineSummary, BenchConfig, BenchReport};

    let mut records = "150".to_string();
    let mut seed = "2005".to_string();
    let mut repeats = "3".to_string();
    let mut jobs = "4".to_string();
    let mut out = "-".to_string();
    let mut baseline = String::new();
    let mut label = "baseline".to_string();
    let mut check = String::new();
    let mut threshold = "0.25".to_string();
    let mut scaling = String::new();
    let mut check_scaling = false;
    let extra = parse_flags(
        args,
        &mut [
            ("records", &mut records),
            ("seed", &mut seed),
            ("repeats", &mut repeats),
            ("jobs", &mut jobs),
            ("out", &mut out),
            ("baseline", &mut baseline),
            ("label", &mut label),
            ("check", &mut check),
            ("threshold", &mut threshold),
            ("scaling", &mut scaling),
        ],
        &mut [("check-scaling", &mut check_scaling)],
    )?;
    if !extra.is_empty() {
        return Err(format!("bench takes no positional arguments: {extra:?}"));
    }
    let cfg = BenchConfig {
        records: records
            .parse()
            .map_err(|_| "--records must be an integer".to_string())?,
        seed: seed
            .parse()
            .map_err(|_| "--seed must be an integer".to_string())?,
        repeats: repeats
            .parse()
            .map_err(|_| "--repeats must be an integer".to_string())?,
        jobs: jobs
            .parse()
            .map_err(|_| "--jobs must be an integer".to_string())?,
    };
    let threshold: f64 = threshold
        .parse()
        .map_err(|_| "--threshold must be a number".to_string())?;
    // `--scaling jobs=1..8` (or `1..8`, or just `8`): sweep worker counts
    // 1..=N. The sweep always starts at 1 because every point's speedup is
    // reported relative to the sweep's own jobs=1 run.
    let max_scaling_jobs: Option<usize> = if scaling.is_empty() {
        if check_scaling {
            return Err("--check-scaling needs --scaling (e.g. --scaling jobs=1..4)".to_string());
        }
        None
    } else {
        let spec = scaling.strip_prefix("jobs=").unwrap_or(&scaling);
        let top = match spec.split_once("..") {
            Some(("1", hi)) => hi.parse::<usize>().ok(),
            Some(_) => None,
            None => spec.parse::<usize>().ok(),
        };
        match top {
            Some(n) if (1..=64).contains(&n) => Some(n),
            _ => {
                return Err(format!(
                "--scaling must be `jobs=1..N`, `1..N`, or `N` with N in 1..=64, got {scaling:?}"
            ))
            }
        }
    };

    let read_report = |path: &str| -> Result<BenchReport, String> {
        let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
    };

    let probe = alloc_count::snapshot;
    let mut report = perf::run_bench(&cfg, Some(&probe));
    if let Some(max_jobs) = max_scaling_jobs {
        let texts = perf::workload(&cfg);
        report.scaling = Some(perf::run_scaling(&cfg, &texts, max_jobs));
    }
    if !baseline.is_empty() {
        let base = read_report(&baseline)?;
        report.baseline = Some(BaselineSummary {
            label: label.clone(),
            serial_notes_per_sec: base.serial.notes_per_sec,
            parallel_notes_per_sec: base.parallel.notes_per_sec,
            allocs_per_note: base.allocations.as_ref().map(|a| a.allocs_per_note),
        });
    }

    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if out == "-" {
        outln!("{json}");
    } else {
        fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("cmr: wrote bench report to {out}");
    }
    eprintln!(
        "cmr: serial {:.1} notes/sec ({:.0} ns/field, cache hit {:.1}%); \
         parallel x{} {:.1} notes/sec",
        report.serial.notes_per_sec,
        report.serial.ns_per_field,
        report.serial.cache_hit_rate * 100.0,
        report.config.jobs,
        report.parallel.notes_per_sec,
    );
    if let Some(a) = &report.allocations {
        eprintln!(
            "cmr: {:.0} allocations/note, {:.0} bytes/note (warm)",
            a.allocs_per_note, a.bytes_per_note
        );
    }
    if let Some(j) = &report.journaled {
        let overhead = if report.parallel.notes_per_sec > 0.0 {
            (1.0 - j.notes_per_sec / report.parallel.notes_per_sec) * 100.0
        } else {
            0.0
        };
        eprintln!(
            "cmr: journaled x{} {:.1} notes/sec ({overhead:+.1}% vs plain parallel)",
            report.config.jobs, j.notes_per_sec
        );
    }
    if let Some(c) = &report.journaled_compacting {
        let reference = report
            .journaled
            .as_ref()
            .map(|j| j.notes_per_sec)
            .unwrap_or(0.0);
        let overhead = if reference > 0.0 {
            (1.0 - c.notes_per_sec / reference) * 100.0
        } else {
            0.0
        };
        eprintln!(
            "cmr: journaled+compact x{} {:.1} notes/sec ({overhead:+.1}% vs journaled, \
             snapshot every {} records)",
            report.config.jobs,
            c.notes_per_sec,
            perf::COMPACT_EVERY
        );
    }
    if let Some(s) = &report.scaling {
        eprintln!(
            "cmr: scaling sweep on {} CPU(s), serial reference {:.1} notes/sec",
            s.cpus, s.serial_notes_per_sec
        );
        eprintln!(
            "cmr: {:>4} {:>11} {:>8} {:>9} {:>11} {:>8} {:>9} {:>12} {:>9}",
            "jobs",
            "notes/sec",
            "speedup",
            "l1-hits",
            "shared-hits",
            "misses",
            "contend",
            "chan-wait-ns",
            "reorder"
        );
        for p in &s.points {
            eprintln!(
                "cmr: {:>4} {:>11.1} {:>7.2}x {:>9} {:>11} {:>8} {:>9} {:>12} {:>9}",
                p.jobs,
                p.notes_per_sec,
                p.speedup_vs_jobs1,
                p.l1_cache_hits,
                p.shared_cache_hits,
                p.cache_misses,
                p.shard_contention,
                p.channel_wait_nanos,
                p.reorder_high_water
            );
        }
        if check_scaling {
            match perf::check_scaling(s, 0.95) {
                Ok(notice) => eprintln!("cmr: scaling gate: {notice}"),
                Err(msg) => {
                    eprintln!("cmr: SCALING REGRESSION: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }

    if !check.is_empty() {
        let base = read_report(&check)?;
        if let Err(msg) = perf::check_regression(&report, &base, threshold) {
            eprintln!("cmr: PERF REGRESSION vs {check}: {msg}");
            std::process::exit(1);
        }
        // The durability gate compares within this run (journaled vs plain
        // parallel), so it is immune to machine-to-machine variance.
        if let Err(msg) = perf::check_journal_overhead(&report, 0.10) {
            eprintln!("cmr: JOURNAL OVERHEAD REGRESSION: {msg}");
            std::process::exit(1);
        }
        // Same within-run principle for compaction: the compacting leg is
        // priced against the journaled leg of this very report.
        if let Err(msg) = perf::check_compaction_overhead(&report, 0.10) {
            eprintln!("cmr: COMPACTION OVERHEAD REGRESSION: {msg}");
            std::process::exit(1);
        }
        eprintln!(
            "cmr: perf check vs {check} passed (threshold {threshold}, journal overhead <10%, \
             compaction overhead <10%)"
        );
    }
    Ok(())
}

/// `cmr lint`: run the static analyzer over the committed rule assets,
/// or — with `--code` — the CMR-S concurrency-soundness checks over the
/// workspace's own sources. Returns the process exit code directly so a
/// deny-threshold failure exits 1 (distinct from usage errors, exit 2).
fn lint(args: &[String]) -> Result<ExitCode, String> {
    let mut format = String::from("human");
    let mut deny = String::from("errors");
    let mut no_color = false;
    let mut code = false;
    let positional = parse_flags(
        args,
        &mut [("format", &mut format), ("deny", &mut deny)],
        &mut [("no-color", &mut no_color), ("code", &mut code)],
    )?;
    if let Some(extra) = positional.first() {
        return Err(format!(
            "lint takes no positional arguments (got `{extra}`)"
        ));
    }
    let deny = match deny.as_str() {
        "notes" => cmr::analyze::Severity::Note,
        "warnings" => cmr::analyze::Severity::Warning,
        "errors" => cmr::analyze::Severity::Error,
        other => {
            return Err(format!(
                "--deny must be notes, warnings, or errors, got `{other}`"
            ))
        }
    };
    let report = if code {
        cmr::analyze::analyze_sources()
    } else {
        cmr::analyze::analyze_assets()
    };
    match format.as_str() {
        "human" => {
            use std::io::IsTerminal as _;
            let color = !no_color && std::io::stdout().is_terminal();
            outln!("{}", report.render_human(color));
        }
        "json" => outln!("{}", report.to_json()),
        "sarif" => outln!("{}", report.to_sarif()),
        other => {
            return Err(format!(
                "--format must be human, json, or sarif, got `{other}`"
            ))
        }
    }
    Ok(if report.passes(deny) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn parse(args: &[String]) -> Result<(), String> {
    let sentence = args.join(" ");
    if sentence.trim().is_empty() {
        return Err("parse needs a sentence".to_string());
    }
    let parser = LinkParser::new();
    match parser.parse_sentence(&sentence) {
        Some(linkage) => {
            outln!("{}", linkage.diagram());
            let c = linkage.constituents();
            let toks = tokenize(&sentence);
            let words = |idxs: &[usize]| {
                idxs.iter()
                    .map(|&i| toks[i].text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            outln!("subject:    [{}]", words(&c.subject));
            outln!("verb:       [{}]", words(&c.verb));
            outln!("object:     [{}]", words(&c.object));
            outln!("supplement: [{}]", words(&c.supplement));
            Ok(())
        }
        None => {
            Err("no linkage (a fragment? the extractors fall back to patterns here)".to_string())
        }
    }
}

fn terms(args: &[String]) -> Result<(), String> {
    let text = args.join(" ");
    if text.trim().is_empty() {
        return Err("terms needs text".to_string());
    }
    let ex = MedicalTermExtractor::new(Ontology::full());
    let hits = ex.extract(&text);
    if hits.is_empty() {
        outln!("no medical terms found");
    }
    for h in hits {
        outln!(
            "{:<30} -> {} [{}] ({})",
            format!("\"{}\"", h.surface),
            h.concept.preferred,
            h.concept.cui,
            h.concept.semtype
        );
    }
    Ok(())
}
