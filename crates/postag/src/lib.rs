//! # cmr-postag — part-of-speech tagging for clinical dictation English
//!
//! Replaces GATE's POS tagger in the original ICDE 2005 system. A two-pass
//! lexicon-plus-rules tagger: closed-class table and morphology-driven
//! analysis propose candidate tags; contextual rules resolve them.
//!
//! ```
//! use cmr_postag::{PosTagger, Tag};
//! use cmr_text::tokenize;
//!
//! let tagged = PosTagger::new().tag(&tokenize("Blood pressure is 144/90."));
//! assert_eq!(tagged[2].tag, Tag::VBZ);
//! assert_eq!(tagged[3].tag, Tag::CD);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod closed;
mod tag;
mod tagger;

pub use closed::closed_class;
pub use tag::Tag;
pub use tagger::{PosTagger, TaggedToken};
