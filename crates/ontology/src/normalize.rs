//! Term normalization, exactly as the paper specifies (§3.2):
//!
//! > "Normalization usually includes two steps: (1) getting the uninfected
//! > form of the surface word, (2) sorting multiple words in alphabetic
//! > order. For example, the term 'high blood pressures' after
//! > normalization becomes 'blood high pressure'."

use cmr_lexicon::Lemmatizer;

/// Normalizes a term: lowercase, lemmatize each word, sort words
/// alphabetically, join with single spaces. Hyphens count as word breaks so
/// `c-section` and `c section` normalize identically.
pub fn normalize(term: &str) -> String {
    let lem = Lemmatizer::new();
    let mut words: Vec<String> = term
        .to_lowercase()
        .split(|c: char| c.is_whitespace() || c == '-')
        .filter(|w| !w.is_empty())
        .map(|w| lem.lemma_any(w))
        .collect();
    words.sort_unstable();
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        assert_eq!(normalize("high blood pressures"), "blood high pressure");
    }

    #[test]
    fn single_word() {
        assert_eq!(normalize("Cholecystectomy"), "cholecystectomy");
        assert_eq!(normalize("biopsies"), "biopsy");
    }

    #[test]
    fn sorting_is_alphabetic() {
        assert_eq!(normalize("past medical history"), "history medical past");
    }

    #[test]
    fn hyphens_split() {
        assert_eq!(normalize("c-section"), normalize("c section"));
    }

    #[test]
    fn idempotent() {
        for t in [
            "high blood pressures",
            "midline hernia closure",
            "postoperative CVA",
        ] {
            let once = normalize(t);
            assert_eq!(normalize(&once), once, "{t}");
        }
    }

    #[test]
    fn empty() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("  - "), "");
    }
}
