//! Link grammar parser latency: the substrate cost that dominated the
//! original system (an O(n³) parse per sentence).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let parser = cmr_linkgram::LinkParser::new();
    let mut g = c.benchmark_group("link_parser");
    g.sample_size(20);

    let short = "She smokes.";
    let medium = "Blood pressure is 144/90, pulse of 84.";
    let long =
        "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.";
    let fragment = "Blood pressure: 144/90.";

    // Cold = the O(n³) region parse; warm = the structure-cache hit that
    // corpus workloads see after the first occurrence of a sentence shape.
    g.bench_function("short_3_words_cold", |b| {
        b.iter(|| {
            parser.clear_cache();
            black_box(parser.parse_sentence(black_box(short)))
        })
    });
    g.bench_function("long_18_words_cold", |b| {
        b.iter(|| {
            parser.clear_cache();
            black_box(parser.parse_sentence(black_box(long)))
        })
    });
    g.bench_function("medium_8_words_warm", |b| {
        b.iter(|| black_box(parser.parse_sentence(black_box(medium))))
    });
    g.bench_function("long_18_words_warm", |b| {
        b.iter(|| black_box(parser.parse_sentence(black_box(long))))
    });
    g.bench_function("fragment_fails_fast_cold", |b| {
        b.iter(|| {
            parser.clear_cache();
            black_box(parser.parse_sentence(black_box(fragment)))
        })
    });
    g.bench_function("dictionary_build", |b| {
        b.iter_batched(
            || (),
            |()| black_box(cmr_linkgram::Dictionary::clinical_english()),
            BatchSize::SmallInput,
        )
    });
    g.finish();

    let mut g = c.benchmark_group("linkage_graph");
    let linkage = parser.parse_sentence(long).expect("parses");
    let weights = cmr_linkgram::LinkWeights::default();
    g.bench_function("dijkstra_distances", |b| {
        b.iter(|| black_box(linkage.distances_from(black_box(2), &weights)))
    });
    g.bench_function("diagram_render", |b| {
        b.iter(|| black_box(linkage.diagram()))
    });
    g.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
