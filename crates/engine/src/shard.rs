//! Deterministic corpus sharding and shard-artifact merging.
//!
//! A sharded run (`cmr extract --shard i/N`) partitions the input by
//! record index: shard `i` owns every global index `g` with
//! `g % N == i`, so the partition depends only on the corpus order —
//! never on timing, worker count, or which shards ran when. Each shard
//! produces its own output, journal, quarantine, and metrics files;
//! the functions here recombine those artifacts into exactly what an
//! unsharded run would have produced:
//!
//! * [`merge_outputs`] round-robin interleaves the shard output files,
//!   restoring global input order line for line;
//! * [`merge_quarantine`] globally orders quarantine entries and drops
//!   the duplicates a kill-between-quarantine-and-journal leaves behind
//!   (the entry is written again by the resumed attempt);
//! * [`crate::EngineMetrics::merge`] sums per-shard metrics.
//!
//! The merge is pure bookkeeping — no extraction reruns — so merging N
//! shard outputs is O(total output bytes).

use crate::retry::QuarantineEntry;
use std::fmt;
use std::io::{BufRead, Write};

/// Which shard owns global record index `g` in an `N`-way partition.
pub fn shard_of(global_index: usize, total: usize) -> usize {
    global_index % total.max(1)
}

/// One shard's slice of an `N`-way run: shard `index` of `total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's number, `0..total`.
    pub index: usize,
    /// Total shards in the partition.
    pub total: usize,
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

impl ShardSpec {
    /// Parses the CLI form `i/N` (0-based: `0/4` … `3/4`).
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        let err = || format!("invalid shard spec `{spec}` (expected i/N with 0 <= i < N)");
        let (i, n) = spec.split_once('/').ok_or_else(err)?;
        let index: usize = i.trim().parse().map_err(|_| err())?;
        let total: usize = n.trim().parse().map_err(|_| err())?;
        if total == 0 || index >= total {
            return Err(err());
        }
        Ok(ShardSpec { index, total })
    }

    /// Whether this shard owns global record index `g`.
    pub fn owns(&self, global_index: usize) -> bool {
        shard_of(global_index, self.total) == self.index
    }

    /// The global corpus index of this shard's `local`-th record.
    pub fn global_index(&self, local: usize) -> usize {
        self.index + local * self.total
    }

    /// How many of `records` global records this shard owns.
    pub fn len(&self, records: usize) -> usize {
        records / self.total + usize::from(records % self.total > self.index)
    }

    /// Whether this shard owns none of `records` global records.
    pub fn is_empty(&self, records: usize) -> bool {
        self.len(records) == 0
    }
}

/// Round-robin interleaves the shard output streams (shard `i` of
/// `shards.len()` first) into `out`, restoring the unsharded output
/// line order. Returns the number of lines written.
///
/// A valid partition leaves shard line counts within one of each other
/// in a specific shape (shards below the remainder have one extra);
/// any other shape means the inputs are not the shards of one run and
/// is rejected rather than silently merged.
pub fn merge_outputs<R: BufRead, W: Write>(shards: &mut [R], out: &mut W) -> std::io::Result<u64> {
    let n = shards.len();
    if n == 0 {
        return Ok(0);
    }
    let mut total = 0u64;
    loop {
        for i in 0..n {
            let mut line = String::new();
            if shards[i].read_line(&mut line)? == 0 {
                // Shard i is the first to run out, at global index
                // `total`: every other shard must be done too.
                for (j, shard) in shards.iter_mut().enumerate() {
                    if j == i {
                        continue;
                    }
                    let mut probe = String::new();
                    if shard.read_line(&mut probe)? != 0 {
                        return Err(std::io::Error::other(format!(
                            "shard outputs are unbalanced: shard {i} ended at record {total} \
                             but shard {j} still has lines (not the shards of one run?)"
                        )));
                    }
                }
                return Ok(total);
            }
            if !line.ends_with('\n') {
                line.push('\n');
            }
            out.write_all(line.as_bytes())?;
            total += 1;
        }
    }
}

/// Globally orders quarantine entries from any number of shards and
/// drops per-index duplicates, keeping each index's first entry.
///
/// Duplicates are not corruption: a shard killed *after* a worker
/// quarantined a record but *before* the sink journaled it re-processes
/// that record on resume and quarantines it again. Extraction and the
/// retry policy are deterministic, so both entries describe the same
/// outcome; exactly one belongs in the merged file.
pub fn merge_quarantine(mut entries: Vec<QuarantineEntry>) -> Vec<QuarantineEntry> {
    entries.sort_by_key(|e| e.index);
    entries.dedup_by_key(|e| e.index);
    entries
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::engine::EngineError;
    use std::io::Cursor;

    #[test]
    fn shard_spec_parses_and_partitions() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!((s.index, s.total), (1, 3));
        assert!(s.owns(1) && s.owns(4) && !s.owns(0) && !s.owns(3));
        assert_eq!(s.global_index(0), 1);
        assert_eq!(s.global_index(2), 7);
        assert_eq!(s.len(7), 2, "shard 1 of 3 owns indices 1 and 4 of 0..7");
        assert_eq!(s.len(8), 3);
        assert!(ShardSpec::parse("3/3").is_err(), "index must be < total");
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("2").is_err());
        assert!(ShardSpec { index: 2, total: 3 }.is_empty(2));
    }

    #[test]
    fn every_index_lands_on_exactly_one_shard() {
        for n in 1..=5usize {
            for g in 0..23usize {
                let owners: Vec<usize> = (0..n)
                    .filter(|&i| ShardSpec { index: i, total: n }.owns(g))
                    .collect();
                assert_eq!(owners, vec![shard_of(g, n)]);
            }
        }
    }

    #[test]
    fn merge_outputs_round_robins_back_to_input_order() {
        // 7 records over 3 shards: 0,3,6 | 1,4 | 2,5.
        let mut shards = vec![
            Cursor::new("r0\nr3\nr6\n".to_string()),
            Cursor::new("r1\nr4\n".to_string()),
            Cursor::new("r2\nr5\n".to_string()),
        ];
        let mut out = Vec::new();
        let n = merge_outputs(&mut shards, &mut out).unwrap();
        assert_eq!(n, 7);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "r0\nr1\nr2\nr3\nr4\nr5\nr6\n"
        );
    }

    #[test]
    fn merge_outputs_rejects_unbalanced_shards() {
        let mut shards = vec![
            Cursor::new("r0\n".to_string()),
            Cursor::new("r1\nr4\nr7\n".to_string()),
        ];
        let mut out = Vec::new();
        let err = merge_outputs(&mut shards, &mut out).unwrap_err();
        assert!(err.to_string().contains("unbalanced"), "was: {err}");
    }

    #[test]
    fn merge_quarantine_orders_globally_and_dedupes_resume_duplicates() {
        let entry = |index: usize, tag: &str| QuarantineEntry {
            index,
            text: tag.to_string(),
            error: EngineError::Aborted,
            attempts: vec![],
        };
        let merged = merge_quarantine(vec![
            entry(7, "shard1-resumed"),
            entry(2, "shard2"),
            entry(7, "shard1-killed-attempt"),
            entry(4, "shard0"),
        ]);
        let shape: Vec<(usize, &str)> = merged.iter().map(|e| (e.index, e.text.as_str())).collect();
        assert_eq!(
            shape,
            vec![(2, "shard2"), (4, "shard0"), (7, "shard1-resumed")],
            "sorted by global index, one entry per index"
        );
    }
}
