//! Property tests: the engine is a pure re-scheduling of the serial
//! pipeline. For any corpus and any worker count, the ordered output
//! sequence — successes and failures alike — must be identical to a
//! one-worker run, and metrics must stay internally consistent.

use cmr_engine::{read_journal, Engine, EngineConfig, JournalEntry, JournalWriter, RunManifest};
use proptest::prelude::*;
use std::io::Write;

fn engine(jobs: usize) -> Engine {
    Engine::new(
        EngineConfig {
            jobs,
            ..EngineConfig::default()
        },
        cmr_core::Schema::paper(),
        cmr_ontology::Ontology::full(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any corpus, any worker count 1–8: output identical to serial.
    #[test]
    fn any_worker_count_matches_serial(
        n in 1usize..8,
        seed in 0u64..500,
        jobs in 2usize..=8,
    ) {
        let corpus = cmr_corpus::CorpusBuilder::new().records(n).seed(seed).build();
        let texts: Vec<&str> = corpus.records.iter().map(|r| r.text.as_str()).collect();
        let serial = engine(1).extract_batch(&texts);
        let parallel = engine(jobs).extract_batch(&texts);
        prop_assert_eq!(
            serde_json::to_string(&serial.items).expect("serialize"),
            serde_json::to_string(&parallel.items).expect("serialize")
        );
    }

    /// Metrics bookkeeping holds for any run shape: every record is either
    /// counted as a success sample or as an error, never both or neither.
    #[test]
    fn metrics_account_for_every_record(
        n in 1usize..8,
        seed in 0u64..500,
        jobs in 1usize..=4,
    ) {
        let corpus = cmr_corpus::CorpusBuilder::new().records(n).seed(seed).build();
        let texts: Vec<&str> = corpus.records.iter().map(|r| r.text.as_str()).collect();
        let out = engine(jobs).extract_batch(&texts);
        prop_assert_eq!(out.items.len(), n);
        let failures = out.items.iter().filter(|r| r.is_err()).count();
        prop_assert_eq!(out.metrics.records as usize, n - failures);
        prop_assert_eq!(out.metrics.errors.total() as usize, failures);
        prop_assert_eq!(out.metrics.stages.total.count, out.metrics.records);
    }

    /// Kill-at-any-record resume: journal the first `k` outcomes of a run,
    /// crash (optionally tearing the final journal line mid-write), resume
    /// from the journal with a fresh engine — the merged output must be
    /// byte-identical to the uninterrupted run for every kill point.
    #[test]
    fn resume_from_any_kill_point_is_byte_identical(
        n in 1usize..8,
        seed in 0u64..500,
        kill_pct in 0usize..=100,
        torn_tail in proptest::bool::ANY,
    ) {
        let corpus = cmr_corpus::CorpusBuilder::new().records(n).seed(seed).build();
        let texts: Vec<String> = corpus.records.iter().map(|r| r.text.clone()).collect();
        let cfg = EngineConfig { jobs: 2, ..EngineConfig::default() };
        let uninterrupted = engine(2).extract_batch(&texts);
        let k = n * kill_pct / 100;

        let path = std::env::temp_dir().join(format!(
            "cmr-proptest-resume-{}-{n}-{seed}-{k}.journal",
            std::process::id()
        ));
        let manifest = RunManifest::for_run(&cfg, &texts);
        {
            let mut journal = JournalWriter::create(&path, &manifest).expect("create");
            for (index, output) in uninterrupted.items.iter().take(k).enumerate() {
                journal
                    .append(&JournalEntry { index, output: output.clone() })
                    .expect("append");
            }
        }
        if torn_tail {
            // A crash mid-write leaves a partial line with no trailing
            // newline; resume must drop it and re-process that record.
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("reopen");
            f.write_all(b"{\"index\":999,\"outp").expect("tear");
        }

        let read = read_journal(&path).expect("read back");
        prop_assert_eq!(read.manifest.mismatch(&RunManifest::for_run(&cfg, &texts)), None);
        prop_assert_eq!(read.entries.len(), k);
        let mut merged: Vec<_> = read.entries.into_iter().map(|e| e.output).collect();
        let tail = engine(2).extract_batch(&texts[k..]);
        merged.extend(tail.items);
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(
            serde_json::to_string(&merged).expect("serialize"),
            serde_json::to_string(&uninterrupted.items).expect("serialize")
        );
    }
}
