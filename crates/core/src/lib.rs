//! # cmr-core — the ICDE 2005 clinical information-extraction system
//!
//! The paper's contribution, on top of the workspace substrates:
//!
//! * [`NumericExtractor`] — numeric fields via link-grammar shortest
//!   distance with the linguistic-pattern fallback (§3.1);
//! * [`MedicalTermExtractor`] — POS-pattern candidates, normalization and
//!   ontology lookup (§3.2);
//! * [`CategoricalExtractor`] — the four-option NLP feature extractor and
//!   ID3 classifier (§3.3), including the numeric-boolean-feature
//!   extension the paper proposes for alcohol use;
//! * [`Pipeline`] — the assembled system of Figure 2, record text in,
//!   structured (serde-serializable) record out;
//! * [`Schema`] — the study's 18-field / 24-attribute task definition.
//!
//! ```
//! use cmr_core::Pipeline;
//!
//! let pipeline = Pipeline::with_default_schema();
//! let out = pipeline.extract("Vitals:  Blood pressure is 144/90, pulse of 84.\n");
//! assert_eq!(out.numeric("pulse").unwrap().to_string(), "84");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Extraction failures are values (CmrError, BudgetExceeded,
// ParseFailureKind), never unwraps: a library panic would take a whole
// batch-engine worker with it.
#![deny(clippy::unwrap_used)]

mod budget;
mod categorical;
mod degradation;
mod error;
mod negation;
mod numeric;
mod pipeline;
mod salvage;
mod schema;
mod spec;
mod terms;

pub use budget::{BudgetExceeded, ExtractBudget};
pub use categorical::{CategoricalExtractor, FeatureExtractor, FeatureOptions};
pub use degradation::{
    DegradationReport, FieldProvenance, ParseFailureCounts, ParseFailureKind, Tier, TierFieldCounts,
};
pub use error::CmrError;
pub use negation::{negation_breakers, negation_triggers, NegationDetector};
pub use numeric::{pattern_fillers, AssociationMethod, MethodUsed, NumericExtractor, NumericHit};
pub use pipeline::{ExtractTiming, ExtractedRecord, Pipeline};
pub use salvage::salvage_fold;
pub use schema::Schema;
// Re-exported so engine-style pools can share one parse cache without a
// direct linkgram dependency.
pub use cmr_linkgram::{SharedCacheStats, SharedParseCache};
// The tracked lock layer lives in its own bottom-level crate (cmr-sync)
// so cmr-linkgram can use it too; downstream code reaches it as
// `cmr_core::sync` per the concurrency-soundness design.
pub use cmr_sync as sync;
pub use spec::{CategoricalFieldSpec, FeatureSpec, TermFieldSpec, ValueKind};
pub use terms::{MedicalTermExtractor, PatternSet, TermHit};
