//! Extractor throughput: numeric association and medical-term scanning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("numeric_extraction");
    let schema = cmr_core::Schema::paper();
    let specs: Vec<&cmr_core::FeatureSpec> = schema.numeric.iter().collect();

    let link_ex = cmr_core::NumericExtractor::new();
    let pattern_ex =
        cmr_core::NumericExtractor::with_method(cmr_core::AssociationMethod::PatternOnly);
    let vitals =
        "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.";
    let fragment = "Menarche at age 10, gravida 4, para 3, last menstrual period about a year ago.";

    g.bench_function("link_grammar_vitals", |b| {
        b.iter(|| black_box(link_ex.extract_sentence(black_box(vitals), &specs)))
    });
    g.bench_function("pattern_only_vitals", |b| {
        b.iter(|| black_box(pattern_ex.extract_sentence(black_box(vitals), &specs)))
    });
    g.bench_function("fallback_on_fragment", |b| {
        b.iter(|| black_box(link_ex.extract_sentence(black_box(fragment), &specs)))
    });
    g.finish();

    let mut g = c.benchmark_group("term_extraction");
    let ex = cmr_core::MedicalTermExtractor::new(cmr_ontology::Ontology::full());
    let pmh = "Significant for diabetes, heart disease, high blood pressure, hypercholesterolemia, bronchitis, arrhythmia, and depression.";
    let psh = "Significant for a postoperative CVA after undergoing a cholecystectomy and a midline hernia closure.";
    g.bench_function("pmh_line", |b| {
        b.iter(|| black_box(ex.extract(black_box(pmh))))
    });
    g.bench_function("psh_line", |b| {
        b.iter(|| black_box(ex.extract(black_box(psh))))
    });
    g.bench_function("normalize_term", |b| {
        b.iter(|| black_box(cmr_ontology::normalize(black_box("high blood pressures"))))
    });
    g.bench_function("ontology_lookup", |b| {
        let onto = cmr_ontology::Ontology::full();
        b.iter(|| black_box(onto.lookup(black_box("high blood pressure"))))
    });
    g.finish();

    let mut g = c.benchmark_group("tagging");
    let tagger = cmr_postag::PosTagger::new();
    let toks = cmr_text::tokenize(vitals);
    g.bench_function("tokenize_vitals", |b| {
        b.iter(|| black_box(cmr_text::tokenize(black_box(vitals))))
    });
    g.bench_function("pos_tag_vitals", |b| {
        b.iter(|| black_box(tagger.tag(black_box(&toks))))
    });
    g.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
