//! The cohort table: structured records assembled for analysis.
//!
//! The paper's §1 motivation: "The value of considering more records
//! simultaneously is the ability to then detect small variations, which may
//! pinpoint important factors previously overlooked." This module is that
//! "considering": extracted records become rows of a typed attribute table
//! that the statistics and rule-mining layers consume.

use cmr_core::ExtractedRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One attribute value in the cohort table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Numeric attribute (blood pressure maps to its systolic component).
    Number(f64),
    /// Categorical attribute ("former", "overweight").
    Text(String),
    /// Presence flag (a history term was extracted).
    Flag(bool),
}

impl Value {
    /// Numeric view, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// A canonical string for grouping/rule mining.
    pub fn key(&self) -> String {
        match self {
            Value::Number(v) => format!("{v}"),
            Value::Text(s) => s.clone(),
            Value::Flag(b) => if *b { "yes" } else { "no" }.to_string(),
        }
    }
}

/// A cohort: named rows of attribute → value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cohort {
    rows: Vec<BTreeMap<String, Value>>,
}

impl Cohort {
    /// An empty cohort.
    pub fn new() -> Cohort {
        Cohort::default()
    }

    /// Number of subjects.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no subjects.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds a raw row.
    pub fn push_row(&mut self, row: BTreeMap<String, Value>) {
        self.rows.push(row);
    }

    /// Adds an extracted record: numeric attributes become numbers; every
    /// extracted history term becomes a `has:<term>` flag; categorical
    /// predictions may be attached via `extras`.
    pub fn push_extracted(&mut self, record: &ExtractedRecord, extras: &[(&str, &str)]) {
        let mut row = BTreeMap::new();
        for (name, value) in &record.numeric {
            row.insert(name.clone(), Value::Number(value.as_f64()));
        }
        for term in record
            .predefined_medical
            .iter()
            .chain(&record.other_medical)
        {
            row.insert(format!("has:{term}"), Value::Flag(true));
        }
        for term in record
            .predefined_surgical
            .iter()
            .chain(&record.other_surgical)
        {
            row.insert(format!("had:{term}"), Value::Flag(true));
        }
        for (k, v) in extras {
            row.insert((*k).to_string(), Value::Text((*v).to_string()));
        }
        self.rows.push(row);
    }

    /// All attribute names appearing in any row.
    pub fn attributes(&self) -> Vec<String> {
        let mut names: Vec<String> = self.rows.iter().flat_map(|r| r.keys().cloned()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Value of an attribute in a row (`None` when absent; absent flags are
    /// semantically `false`).
    pub fn get(&self, row: usize, attr: &str) -> Option<&Value> {
        self.rows.get(row).and_then(|r| r.get(attr))
    }

    /// Rows where `attr` has the given key (flags: absent = "no").
    pub fn matching(&self, attr: &str, key: &str) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.key_of(i, attr) == key)
            .collect()
    }

    /// The grouping key of `attr` in a row; missing flag attributes
    /// (`has:*`/`had:*`) read as "no", other missing attributes as "".
    pub fn key_of(&self, row: usize, attr: &str) -> String {
        match self.get(row, attr) {
            Some(v) => v.key(),
            None if attr.starts_with("has:") || attr.starts_with("had:") => "no".to_string(),
            None => String::new(),
        }
    }

    /// Prevalence of `attr == key` in the cohort.
    pub fn prevalence(&self, attr: &str, key: &str) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.matching(attr, key).len() as f64 / self.len() as f64
    }

    /// Mean of a numeric attribute over rows that carry it.
    pub fn mean(&self, attr: &str) -> Option<f64> {
        let values: Vec<f64> = (0..self.len())
            .filter_map(|i| self.get(i, attr).and_then(Value::as_number))
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Cross-tabulation: counts of (key of `a`, key of `b`) pairs.
    pub fn crosstab(&self, a: &str, b: &str) -> BTreeMap<(String, String), usize> {
        let mut out = BTreeMap::new();
        for i in 0..self.len() {
            let ka = self.key_of(i, a);
            let kb = self.key_of(i, b);
            *out.entry((ka, kb)).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn toy() -> Cohort {
        let mut c = Cohort::new();
        for (smoker, htn, weight) in [
            ("current", true, 190.0),
            ("current", true, 180.0),
            ("never", false, 150.0),
            ("never", true, 160.0),
            ("former", false, 170.0),
        ] {
            let mut row = BTreeMap::new();
            row.insert("smoking".to_string(), Value::Text(smoker.to_string()));
            if htn {
                row.insert("has:hypertension".to_string(), Value::Flag(true));
            }
            row.insert("weight".to_string(), Value::Number(weight));
            c.push_row(row);
        }
        c
    }

    #[test]
    fn prevalence_and_mean() {
        let c = toy();
        assert_eq!(c.len(), 5);
        assert!((c.prevalence("smoking", "current") - 0.4).abs() < 1e-12);
        assert!((c.prevalence("has:hypertension", "yes") - 0.6).abs() < 1e-12);
        assert!((c.mean("weight").unwrap() - 170.0).abs() < 1e-12);
        assert_eq!(c.mean("missing"), None);
    }

    #[test]
    fn absent_flags_read_as_no() {
        let c = toy();
        assert_eq!(c.matching("has:hypertension", "no").len(), 2);
    }

    #[test]
    fn crosstab_counts() {
        let c = toy();
        let t = c.crosstab("smoking", "has:hypertension");
        assert_eq!(t[&("current".to_string(), "yes".to_string())], 2);
        assert_eq!(t[&("never".to_string(), "yes".to_string())], 1);
        assert_eq!(t[&("former".to_string(), "no".to_string())], 1);
    }

    #[test]
    fn from_extracted_record() {
        let pipeline = cmr_core::Pipeline::with_default_schema();
        let out = pipeline.extract(
            "Patient: 1\nPast Medical History:  Significant for diabetes.\nVitals:  Blood pressure is 140/90, pulse of 80, temperature of 98.6, and weight of 170 pounds.\n",
        );
        let mut c = Cohort::new();
        c.push_extracted(&out, &[("smoking", "never")]);
        assert_eq!(c.key_of(0, "has:diabetes"), "yes");
        assert_eq!(c.key_of(0, "smoking"), "never");
        assert_eq!(c.get(0, "pulse").unwrap().as_number(), Some(80.0));
        assert_eq!(
            c.get(0, "blood_pressure").unwrap().as_number(),
            Some(140.0),
            "ratio maps to systolic"
        );
    }

    #[test]
    fn attributes_sorted_unique() {
        let c = toy();
        let attrs = c.attributes();
        assert!(attrs.contains(&"smoking".to_string()));
        let mut dedup = attrs.clone();
        dedup.dedup();
        assert_eq!(attrs, dedup);
    }
}
