//! Decision-tree checks (`CMR-D040` … `CMR-D042`): dead branches,
//! redundant splits, features the extractor can never produce.
//!
//! The committed assets here are the paper's categorical classifier
//! configurations (`FeatureOptions::paper_smoking` / `paper_alcohol`);
//! the check trains each on its reference example set and audits the
//! trained tree shape.

use crate::{Diagnostic, Severity};
use cmr_core::{CategoricalExtractor, FeatureOptions};
use cmr_ml::TreeNode;

/// Workspace-relative path of the classifier configurations.
pub const ASSET: &str = "crates/core/src/categorical.rs";

/// Recursively audits a trained tree.
///
/// * `CMR-D040`: a boolean feature re-tested on a path that already fixed
///   its value — one subtree is unreachable (dead branch).
/// * `CMR-D041`: a split whose two children are leaves with the same
///   label — the test changes nothing.
/// * `CMR-D042`: a feature index out of bounds (Error), or a numeric
///   `num<=t` / `num>t` feature whose threshold the extractor options do
///   not generate (Warning) — the feature is always false at predict time.
pub fn check_tree(
    node: &TreeNode,
    feature_names: &[String],
    thresholds: &[f64],
    field: &str,
    out: &mut Vec<Diagnostic>,
) {
    let mut path = Vec::new();
    walk(node, feature_names, thresholds, field, &mut path, out);
}

fn walk(
    node: &TreeNode,
    feature_names: &[String],
    thresholds: &[f64],
    field: &str,
    path: &mut Vec<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let TreeNode::Split {
        feature,
        on_true,
        on_false,
    } = node
    else {
        return;
    };
    let span = format!("field `{field}`, depth {}", path.len());
    if *feature >= feature_names.len() {
        out.push(Diagnostic::new(
            "CMR-D042",
            Severity::Error,
            ASSET,
            span.clone(),
            format!(
                "split tests feature index {feature}, but the extractor produces only {} features",
                feature_names.len()
            ),
        ));
    } else {
        let name = &feature_names[*feature];
        if path.contains(feature) {
            out.push(
                Diagnostic::new(
                    "CMR-D040",
                    Severity::Warning,
                    ASSET,
                    span.clone(),
                    format!(
                        "feature \"{name}\" is tested again on a path that already fixed its value; one subtree is unreachable"
                    ),
                )
                .with_fix("retrain; a sound ID3 never re-splits a boolean feature"),
            );
        }
        if let Some(t) = parse_numeric_threshold(name) {
            let known = thresholds.iter().any(|k| (k - t).abs() < 1e-9);
            if !known {
                out.push(Diagnostic::new(
                    "CMR-D042",
                    Severity::Warning,
                    ASSET,
                    span.clone(),
                    format!(
                        "numeric feature \"{name}\" references threshold {t}, which the extractor options do not generate; it is always false at predict time"
                    ),
                ));
            }
        }
    }
    if let (TreeNode::Leaf { label: a }, TreeNode::Leaf { label: b }) =
        (on_true.as_ref(), on_false.as_ref())
    {
        if a == b {
            out.push(Diagnostic::new(
                "CMR-D041",
                Severity::Warning,
                ASSET,
                span,
                "both branches of this split are leaves with the same label; the test is redundant"
                    .to_string(),
            ));
        }
    }
    path.push(*feature);
    walk(on_true, feature_names, thresholds, field, path, out);
    walk(on_false, feature_names, thresholds, field, path, out);
    path.pop();
}

/// Parses a `num<=t` / `num>t` feature name back to its threshold.
fn parse_numeric_threshold(name: &str) -> Option<f64> {
    let rest = name
        .strip_prefix("num<=")
        .or_else(|| name.strip_prefix("num>"))?;
    rest.parse().ok()
}

/// Reference training set for the smoking-status classifier (the §3.3
/// worked example).
pub fn smoking_examples() -> Vec<(String, String)> {
    [
        ("She has never smoked.", "never"),
        ("She denies smoking.", "never"),
        ("No tobacco use.", "never"),
        ("She quit smoking five years ago.", "former"),
        ("Former smoker, quit ten years ago.", "former"),
        ("She is currently a smoker.", "current"),
        ("She smokes two packs per day.", "current"),
    ]
    .iter()
    .map(|(t, l)| (t.to_string(), l.to_string()))
    .collect()
}

/// Reference training set for the alcohol-use classifier (§3.3's numeric
/// boolean features at threshold 2).
pub fn alcohol_examples() -> Vec<(String, String)> {
    [
        ("She denies alcohol use.", "none"),
        ("No history of alcohol use.", "none"),
        ("She drinks 1 glass of wine per week.", "social"),
        ("Drinks 2 beers per week.", "social"),
        ("She drinks 6 beers per day.", "heavy"),
        ("Reports 8 drinks daily.", "heavy"),
    ]
    .iter()
    .map(|(t, l)| (t.to_string(), l.to_string()))
    .collect()
}

fn check_trained(
    field: &str,
    options: FeatureOptions,
    examples: &[(String, String)],
    out: &mut Vec<Diagnostic>,
) {
    let thresholds = options.numeric_thresholds.clone();
    let mut c = CategoricalExtractor::new(options);
    c.train(examples);
    if let Some(tree) = c.tree() {
        check_tree(
            &tree.structure(),
            tree.feature_names(),
            &thresholds,
            field,
            out,
        );
    }
}

/// Trains the paper's two categorical classifiers on their reference
/// example sets and audits the resulting trees.
pub fn check(out: &mut Vec<Diagnostic>) {
    check_trained(
        "smoking",
        FeatureOptions::paper_smoking(),
        &smoking_examples(),
        out,
    );
    check_trained(
        "alcohol",
        FeatureOptions::paper_alcohol(),
        &alcohol_examples(),
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: usize) -> Box<TreeNode> {
        Box::new(TreeNode::Leaf { label })
    }

    fn split(feature: usize, on_true: Box<TreeNode>, on_false: Box<TreeNode>) -> Box<TreeNode> {
        Box::new(TreeNode::Split {
            feature,
            on_true,
            on_false,
        })
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn trained_paper_trees_are_clean() {
        let mut out = Vec::new();
        check(&mut out);
        assert!(out.is_empty(), "trained trees regressed: {out:#?}");
    }

    #[test]
    fn repeated_feature_on_path_is_a_dead_branch() {
        let tree = split(0, split(0, leaf(0), leaf(1)), leaf(1));
        let mut out = Vec::new();
        check_tree(&tree, &names(1), &[], "x", &mut out);
        let d040: Vec<_> = out.iter().filter(|d| d.code == "CMR-D040").collect();
        assert_eq!(d040.len(), 1, "{out:#?}");
        assert!(d040[0].message.contains("f0"));
    }

    #[test]
    fn same_feature_on_different_paths_is_fine() {
        let tree = split(0, split(1, leaf(0), leaf(1)), split(1, leaf(1), leaf(0)));
        let mut out = Vec::new();
        check_tree(&tree, &names(2), &[], "x", &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn redundant_split_is_flagged() {
        let tree = split(0, leaf(1), leaf(1));
        let mut out = Vec::new();
        check_tree(&tree, &names(1), &[], "x", &mut out);
        assert!(out.iter().any(|d| d.code == "CMR-D041"), "{out:#?}");
    }

    #[test]
    fn out_of_bounds_feature_is_an_error() {
        let tree = split(7, leaf(0), leaf(1));
        let mut out = Vec::new();
        check_tree(&tree, &names(1), &[], "x", &mut out);
        let d042: Vec<_> = out.iter().filter(|d| d.code == "CMR-D042").collect();
        assert_eq!(d042.len(), 1, "{out:#?}");
        assert_eq!(d042[0].severity, Severity::Error);
    }

    #[test]
    fn unknown_numeric_threshold_is_flagged() {
        let mut fnames = names(1);
        fnames.push("num<=3".to_string());
        let tree = split(1, leaf(0), leaf(1));
        let mut out = Vec::new();
        check_tree(&tree, &fnames, &[2.0], "x", &mut out);
        let d042: Vec<_> = out.iter().filter(|d| d.code == "CMR-D042").collect();
        assert_eq!(d042.len(), 1, "{out:#?}");
        assert_eq!(d042[0].severity, Severity::Warning);
        assert!(d042[0].message.contains("num<=3"));
    }

    #[test]
    fn known_numeric_threshold_is_clean() {
        let fnames = vec!["num<=2".to_string(), "num>2".to_string()];
        let tree = split(0, leaf(0), split(1, leaf(1), leaf(0)));
        let mut out = Vec::new();
        check_tree(&tree, &fnames, &[2.0], "x", &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
