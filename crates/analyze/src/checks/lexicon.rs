//! Lexicon checks (`CMR-D010` … `CMR-D014`): word lists, irregular
//! morphology tables, inflection round-trips, and the abbreviation table.

use crate::{Diagnostic, Severity};
use cmr_lexicon::{
    noun_plural, verb_3sg, verb_gerund, verb_past, Lemmatizer, WordClass, ABBREVIATIONS,
};
use cmr_text::tokenize;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Workspace-relative path of the word lists.
pub const WORDS_ASSET: &str = "crates/lexicon/src/words.rs";
/// Workspace-relative path of the irregular tables.
pub const IRREGULAR_ASSET: &str = "crates/lexicon/src/irregular.rs";
/// Workspace-relative path of the abbreviation table.
pub const ABBREV_ASSET: &str = "crates/lexicon/src/abbrev.rs";

/// A generation table row set: `(table name, matching analysis table name,
/// lemma → form rows)`.
pub type GenerationTable<'a> = (&'a str, &'a str, &'a [(&'a str, &'a str)]);

/// `CMR-D010` / `CMR-D011`: duplicate entries within a word list, and
/// entries shared across part-of-speech lists. `lists` pairs a list name
/// (`"NOUNS"`) with its entries.
pub fn check_word_lists(lists: &[(&str, &[&str])], out: &mut Vec<Diagnostic>) {
    let mut homes: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (list, words) in lists {
        let mut seen: HashSet<&str> = HashSet::new();
        for word in *words {
            if !seen.insert(word) {
                out.push(
                    Diagnostic::new(
                        "CMR-D010",
                        Severity::Warning,
                        WORDS_ASSET,
                        format!("{list}[\"{word}\"]"),
                        format!("word list {list} contains \"{word}\" twice"),
                    )
                    .with_fix("remove the duplicate entry"),
                );
            }
        }
        for word in seen {
            homes.entry(word).or_default().push(list);
        }
    }
    for (word, lists) in &homes {
        if lists.len() > 1 {
            out.push(Diagnostic::new(
                "CMR-D011",
                Severity::Note,
                WORDS_ASSET,
                format!("\"{word}\""),
                format!(
                    "\"{word}\" appears in {} part-of-speech lists ({}); POS-ambiguous entries bias tagging",
                    lists.len(),
                    lists.join(", ")
                ),
            ));
        }
    }
}

/// `CMR-D012`: duplicate keys inside an irregular table, and
/// generation/analysis disagreements — a generation table (`lemma → form`)
/// whose form the matching analysis table (`form → lemma`) resolves to a
/// *different* lemma round-trips wrong.
pub fn check_irregular_tables(
    analysis: &[(&str, &[(&str, &str)])],
    generation: &[GenerationTable<'_>],
    out: &mut Vec<Diagnostic>,
) {
    let mut analysis_maps: HashMap<&str, HashMap<&str, &str>> = HashMap::new();
    for (table, rows) in analysis {
        let mut map: HashMap<&str, &str> = HashMap::new();
        check_duplicate_keys(table, rows, out);
        for (k, v) in *rows {
            map.entry(k).or_insert(v);
        }
        analysis_maps.insert(table, map);
    }
    for (table, analysis_table, rows) in generation {
        check_duplicate_keys(table, rows, out);
        let Some(inverse) = analysis_maps.get(analysis_table) else {
            continue;
        };
        for (lemma, form) in *rows {
            if let Some(found) = inverse.get(form) {
                if found != lemma {
                    out.push(
                        Diagnostic::new(
                            "CMR-D012",
                            Severity::Warning,
                            IRREGULAR_ASSET,
                            format!("{table}[\"{lemma}\"]"),
                            format!(
                                "{table} generates \"{lemma}\" → \"{form}\" but {analysis_table} analyzes \"{form}\" → \"{found}\""
                            ),
                        )
                        .with_fix("make the generation and analysis rows agree"),
                    );
                }
            }
        }
    }
}

fn check_duplicate_keys(table: &str, rows: &[(&str, &str)], out: &mut Vec<Diagnostic>) {
    let mut seen: HashSet<&str> = HashSet::new();
    for (k, _) in rows {
        if !seen.insert(k) {
            out.push(
                Diagnostic::new(
                    "CMR-D012",
                    Severity::Warning,
                    IRREGULAR_ASSET,
                    format!("{table}[\"{k}\"]"),
                    format!("irregular table {table} defines \"{k}\" twice"),
                )
                .with_fix("remove the duplicate row"),
            );
        }
    }
}

/// `CMR-D013`: a generated inflection that re-tokenizes into something the
/// matchers can never see (not a single word token), or that the
/// lemmatizer does not resolve back to its base. `entries` pairs a list
/// name with `(word, class)` rows.
pub fn check_inflection_roundtrip(
    entries: &[(&str, &[&str], WordClass)],
    out: &mut Vec<Diagnostic>,
) {
    let lemmatizer = Lemmatizer::new();
    for (list, words, class) in entries {
        for word in *words {
            let forms: Vec<(&'static str, String)> = match class {
                WordClass::Noun => vec![("plural", noun_plural(word))],
                WordClass::Verb => vec![
                    ("3sg", verb_3sg(word)),
                    ("past", verb_past(word)),
                    ("gerund", verb_gerund(word)),
                ],
                _ => Vec::new(),
            };
            for (kind, form) in forms {
                if !is_single_word_token(&form) {
                    out.push(Diagnostic::new(
                        "CMR-D013",
                        Severity::Warning,
                        WORDS_ASSET,
                        format!("{list}[\"{word}\"] {kind} \"{form}\""),
                        format!(
                            "generated {kind} \"{form}\" does not tokenize as a single word, so keyword matching can never see it"
                        ),
                    ));
                    continue;
                }
                let back = lemmatizer.lemma(&form, *class);
                if back != *word {
                    out.push(Diagnostic::new(
                        "CMR-D013",
                        Severity::Note,
                        WORDS_ASSET,
                        format!("{list}[\"{word}\"] {kind} \"{form}\""),
                        format!(
                            "generated {kind} \"{form}\" lemmatizes to \"{back}\", not back to \"{word}\""
                        ),
                    ));
                }
            }
        }
    }
}

/// True when `text` tokenizes to exactly one `Word` token equal to itself.
fn is_single_word_token(text: &str) -> bool {
    let toks = tokenize(text);
    toks.len() == 1 && toks[0].kind.is_word() && toks[0].text.to_lowercase() == text.to_lowercase()
}

/// `CMR-D014`: duplicate abbreviation keys, self-expansions, and chained
/// expansions (an expansion that is itself an abbreviation key — expansion
/// is deliberately non-recursive, so the chain silently stops).
pub fn check_abbreviations(table: &[(&str, &str)], out: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<&str, &str> = HashMap::new();
    for (k, v) in table {
        if seen.insert(k, v).is_some() {
            out.push(
                Diagnostic::new(
                    "CMR-D014",
                    Severity::Warning,
                    ABBREV_ASSET,
                    format!("ABBREVIATIONS[\"{k}\"]"),
                    format!(
                        "abbreviation \"{k}\" is defined twice; the build keeps an arbitrary row"
                    ),
                )
                .with_fix("remove the duplicate row"),
            );
        }
        if k == v {
            out.push(Diagnostic::new(
                "CMR-D014",
                Severity::Warning,
                ABBREV_ASSET,
                format!("ABBREVIATIONS[\"{k}\"]"),
                format!("abbreviation \"{k}\" expands to itself"),
            ));
        }
    }
    for (k, v) in table {
        if *k != *v && seen.contains_key(v) {
            out.push(Diagnostic::new(
                "CMR-D014",
                Severity::Warning,
                ABBREV_ASSET,
                format!("ABBREVIATIONS[\"{k}\"]"),
                format!(
                    "expansion \"{v}\" is itself an abbreviation key; expansion is not recursive, so the chain stops after one step"
                ),
            ));
        }
    }
}

/// Runs the lexicon checks over the committed tables.
pub fn check(out: &mut Vec<Diagnostic>) {
    use cmr_lexicon::{ADJECTIVES, ADVERBS, NOUNS, VERBS};
    check_word_lists(
        &[
            ("NOUNS", NOUNS),
            ("VERBS", VERBS),
            ("ADJECTIVES", ADJECTIVES),
            ("ADVERBS", ADVERBS),
        ],
        out,
    );
    check_irregular_tables(
        &[
            ("IRREGULAR_VERBS", cmr_lexicon_irregulars::VERBS),
            ("IRREGULAR_NOUNS", cmr_lexicon_irregulars::NOUNS),
            ("IRREGULAR_ADJS", cmr_lexicon_irregulars::ADJS),
        ],
        &[
            (
                "IRREGULAR_PAST",
                "IRREGULAR_VERBS",
                cmr_lexicon_irregulars::PAST,
            ),
            (
                "IRREGULAR_PART",
                "IRREGULAR_VERBS",
                cmr_lexicon_irregulars::PART,
            ),
            (
                "IRREGULAR_PLURAL",
                "IRREGULAR_NOUNS",
                cmr_lexicon_irregulars::PLURAL,
            ),
        ],
        out,
    );
    check_inflection_roundtrip(
        &[
            ("NOUNS", NOUNS, WordClass::Noun),
            ("VERBS", VERBS, WordClass::Verb),
        ],
        out,
    );
    check_abbreviations(ABBREVIATIONS, out);
}

/// Local aliases for the committed irregular tables.
mod cmr_lexicon_irregulars {
    pub use cmr_lexicon::{
        IRREGULAR_ADJS as ADJS, IRREGULAR_NOUNS as NOUNS, IRREGULAR_PART as PART,
        IRREGULAR_PAST as PAST, IRREGULAR_PLURAL as PLURAL, IRREGULAR_VERBS as VERBS,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_lexicon_is_clean_at_warning() {
        let mut out = Vec::new();
        check(&mut out);
        let bad: Vec<_> = out
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(bad.is_empty(), "committed lexicon regressed: {bad:#?}");
    }

    /// Regression: NOUNS used to list "complaint" and "lesion" twice
    /// (once in the symptom block, again in the findings block). CMR-D010
    /// is the diagnostic that found them.
    #[test]
    fn duplicate_entry_regression_complaint_lesion() {
        let mut out = Vec::new();
        check_word_lists(
            &[(
                "NOUNS",
                &["complaint", "pain", "lesion", "complaint", "lesion"],
            )],
            &mut out,
        );
        let d010: Vec<_> = out.iter().filter(|d| d.code == "CMR-D010").collect();
        assert_eq!(d010.len(), 2, "{out:#?}");
        assert!(d010.iter().any(|d| d.span == "NOUNS[\"complaint\"]"));
        assert!(d010.iter().any(|d| d.span == "NOUNS[\"lesion\"]"));
        assert!(d010.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn cross_class_entry_is_a_note() {
        let mut out = Vec::new();
        check_word_lists(
            &[("VERBS", &["palpable"]), ("ADJECTIVES", &["palpable"])],
            &mut out,
        );
        let d011: Vec<_> = out.iter().filter(|d| d.code == "CMR-D011").collect();
        assert_eq!(d011.len(), 1, "{out:#?}");
        assert_eq!(d011[0].severity, Severity::Note);
        assert!(d011[0].message.contains("VERBS"));
        assert!(d011[0].message.contains("ADJECTIVES"));
    }

    #[test]
    fn irregular_conflict_is_flagged() {
        let mut out = Vec::new();
        check_irregular_tables(
            &[("AV", &[("went", "go"), ("went", "walk")])],
            &[("GP", "AV", &[("wend", "went")])],
            &mut out,
        );
        let d012: Vec<_> = out.iter().filter(|d| d.code == "CMR-D012").collect();
        // One duplicate key + one generation/analysis conflict.
        assert_eq!(d012.len(), 2, "{out:#?}");
        assert!(d012.iter().any(|d| d.message.contains("twice")));
        assert!(d012.iter().any(|d| d.message.contains("analyzes")));
    }

    #[test]
    fn untokenizable_inflection_is_flagged() {
        let mut out = Vec::new();
        // A multi-word "noun" cannot re-tokenize as one word.
        check_inflection_roundtrip(&[("NOUNS", &["ad hoc"], WordClass::Noun)], &mut out);
        assert!(
            out.iter()
                .any(|d| d.code == "CMR-D013" && d.severity == Severity::Warning),
            "{out:#?}"
        );
    }

    #[test]
    fn abbreviation_cycle_is_flagged() {
        let mut out = Vec::new();
        check_abbreviations(
            &[("bp", "blood pressure"), ("x", "x"), ("y", "bp")],
            &mut out,
        );
        let d014: Vec<_> = out.iter().filter(|d| d.code == "CMR-D014").collect();
        assert_eq!(d014.len(), 2, "{out:#?}");
        assert!(d014.iter().any(|d| d.message.contains("itself")));
        assert!(d014.iter().any(|d| d.message.contains("recursive")));
    }
}
