//! # cmr-text — text substrate for clinical information extraction
//!
//! This crate replaces the roles GATE played in the original ICDE 2005
//! system: tokenization (with number recognition), sentence splitting and
//! record/section handling for semi-structured clinical notes.
//!
//! ```
//! use cmr_text::{tokenize, split_sentences, annotate_numbers, Record};
//!
//! let toks = tokenize("Blood pressure is 144/90, pulse of 84.");
//! let numbers = annotate_numbers(&toks);
//! assert_eq!(numbers.len(), 2);
//!
//! let rec = Record::parse("Vitals: Blood pressure is 144/90.\n");
//! assert_eq!(rec.section("Vitals").unwrap().body, "Blood pressure is 144/90.");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod intern;
mod number;
mod section;
mod sentence;
mod span;
mod token;
mod tokenize;

pub use intern::{intern, intern_lower, Sym};
pub use number::{annotate_numbers, parse_word_run, word_value, NumberAnnotation};
pub use section::{Record, Section};
pub use sentence::{split_sentences, Sentence};
pub use span::Span;
pub use token::{NumberValue, Token, TokenKind};
pub use tokenize::{number_token_indices, tokenize};
