//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled over `proc_macro` (no `syn`/`quote` available offline). It
//! parses the item skeleton — attributes are skipped, generics are
//! rejected — and generates impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` value-tree traits. Supported shapes are the ones
//! this workspace derives: structs with named fields, and enums with unit,
//! tuple, and struct variants, using serde's externally-tagged JSON
//! representation:
//!
//! * unit variant `E::V`            → `"V"`
//! * newtype variant `E::V(x)`      → `{"V": x}`
//! * tuple variant `E::V(a, b)`     → `{"V": [a, b]}`
//! * struct variant `E::V {f}`      → `{"V": {"f": ...}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// --- item model ------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Struct with named fields.
    Struct(Vec<String>),
    /// Enum of variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(...)`).
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected item name, found {other:?}"),
    };
    if matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic types are not supported (add a manual impl)");
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stand-in derive: only braced {keyword} bodies are supported, found {other:?}"
        ),
    };

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_named_fields(body)),
        "enum" => ItemKind::Enum(parse_variants(body)),
        other => panic!("serde stand-in derive: cannot derive for `{other}`"),
    };
    Item { name, kind }
}

/// Parses `{ attrs? vis? name: Type, ... }`, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("serde stand-in derive: expected field name, found {tok:?}");
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stand-in derive: expected `:`, found {other:?}"),
        }
        // Consume the type up to the next top-level comma. Parens/brackets
        // arrive as single groups; only `<...>` nesting needs counting.
        let mut angle_depth = 0usize;
        for tok in toks.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Parses enum variants.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            toks.next();
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(name) = tok else {
            panic!("serde stand-in derive: expected variant name, found {tok:?}");
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_elems(g.stream());
                toks.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        // Skip to the comma separating variants (covers discriminants).
        for tok in toks.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

/// Counts comma-separated elements at the top level of a token stream
/// (angle-bracket aware), e.g. the arity of a tuple variant.
fn count_top_level_elems(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0usize;
    for tok in stream {
        saw_any = true;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

// --- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut s = String::from("let mut __obj = ::std::vec::Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__obj)");
            s
        }
        ItemKind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders = fields.join(", ");
                        let mut inner = String::from("{ let mut __obj = ::std::vec::Vec::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__obj) }");
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::__private::field(__obj, \"{name}\", \"{f}\")?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__content)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __items = __content.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                 if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{vn}({}));\n\
                             }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inner = format!(
                            "let __obj = __content.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::__private::field(__obj, \"{name}::{vn}\", \"{f}\")?,\n"
                            ));
                        }
                        inner.push_str("});");
                        data_arms.push_str(&format!("\"{vn}\" => {{\n{inner}\n}}\n"));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(__s) = __v {{\n\
                     match __s.as_str() {{\n{unit_arms}\
                         __other => return ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                     }}\n\
                 }}\n\
                 if let ::std::option::Option::Some(__entries) = __v.as_object() {{\n\
                     if __entries.len() == 1 {{\n\
                         let (__tag, __content) = &__entries[0];\n\
                         match __tag.as_str() {{\n{data_arms}\
                             __other => return ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\"invalid representation for enum {name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
