//! The tokenizer.
//!
//! Clinical dictation text mixes prose with measurements; the tokenizer
//! recognizes digit numbers (including decimals like `98.3` and slash ratios
//! like `144/90`) directly, so that downstream components never need to
//! re-lex numerics. This mirrors the role GATE's tokenizer + number NER
//! played in the original system ("after tokenization, all numbers in the
//! text are identified").

use crate::span::Span;
use crate::token::{NumberValue, Token, TokenKind};

/// Tokenizes `text` into [`Token`]s with byte spans.
///
/// Rules, in priority order at each position:
///
/// 1. whitespace is skipped;
/// 2. a digit starts a number: `\d+` then optionally `.\d+` (decimal) or
///    `/\d+` (ratio); a trailing `.` not followed by a digit is *not*
///    consumed (it is sentence punctuation);
/// 3. a letter starts a word: letters plus internal hyphens/apostrophes
///    joining further alphanumerics (`50-year-old` tokenizes as one word
///    only when it *starts* with a letter; `50-year-old` actually starts
///    with a digit — see rule 2 note below);
/// 4. anything else is a single `Punct`/`Symbol` token.
///
/// A number followed immediately by `-letter` (as in `50-year-old`) keeps the
/// number as its own token and lets the following hyphenated word form
/// separately; the paper's age pattern ("a 50-year-old woman") needs the `50`
/// visible as a number.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let (tok, next) = lex_number(text, i);
            tokens.push(tok);
            i = next;
            continue;
        }
        if c.is_ascii_alphabetic() {
            let (tok, next) = lex_word(text, i);
            tokens.push(tok);
            i = next;
            continue;
        }
        // Multi-byte UTF-8 character: treat the whole char as a symbol.
        let ch = text[i..].chars().next().expect("non-empty remainder");
        let len = ch.len_utf8();
        let kind = if ch.is_ascii_punctuation() {
            classify_punct(ch)
        } else {
            TokenKind::Symbol
        };
        tokens.push(Token {
            text: text[i..i + len].to_string(),
            span: Span::new(i, i + len),
            kind,
        });
        i += len;
    }
    tokens
}

fn classify_punct(c: char) -> TokenKind {
    match c {
        '.' | ',' | ':' | ';' | '!' | '?' | '(' | ')' | '"' | '\'' | '-' | '/' => TokenKind::Punct,
        _ => TokenKind::Symbol,
    }
}

/// Lexes a digit-initial number starting at byte `start`.
fn lex_number(text: &str, start: usize) -> (Token, usize) {
    let bytes = text.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let int_end = i;
    // Decimal part: '.' must be followed by a digit, otherwise it is a period.
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        let raw = &text[start..i];
        let value = raw.parse::<f64>().expect("lexed decimal parses");
        return (
            Token {
                text: raw.to_string(),
                span: Span::new(start, i),
                kind: TokenKind::Number(NumberValue::Float(value)),
            },
            i,
        );
    }
    // Ratio part: '/' must be followed by a digit (blood pressure `144/90`).
    if i + 1 < bytes.len() && bytes[i] == b'/' && bytes[i + 1].is_ascii_digit() {
        let mut j = i + 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        let a = text[start..int_end].parse::<i64>();
        let b = text[i + 1..j].parse::<i64>();
        if let (Ok(a), Ok(b)) = (a, b) {
            let raw = &text[start..j];
            return (
                Token {
                    text: raw.to_string(),
                    span: Span::new(start, j),
                    kind: TokenKind::Number(NumberValue::Ratio(a, b)),
                },
                j,
            );
        }
    }
    let raw = &text[start..int_end];
    let kind = match raw.parse::<i64>() {
        Ok(v) => TokenKind::Number(NumberValue::Int(v)),
        // Overflow on absurdly long digit strings: keep it as a word so the
        // pipeline degrades gracefully instead of panicking.
        Err(_) => TokenKind::Word,
    };
    (
        Token {
            text: raw.to_string(),
            span: Span::new(start, int_end),
            kind,
        },
        int_end,
    )
}

/// Lexes a letter-initial word starting at byte `start`. Internal hyphens and
/// apostrophes join when followed by an alphanumeric (`doesn't`,
/// `fifty-four`, `S1` style alphanumerics continue too).
fn lex_word(text: &str, start: usize) -> (Token, usize) {
    let bytes = text.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_alphanumeric() {
            i += 1;
        } else if (c == b'-' || c == b'\'')
            && i + 1 < bytes.len()
            && bytes[i + 1].is_ascii_alphanumeric()
        {
            i += 2;
            // continue consuming within the hyphenated word
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                i += 1;
            }
        } else {
            break;
        }
    }
    (
        Token {
            text: text[start..i].to_string(),
            span: Span::new(start, i),
            kind: TokenKind::Word,
        },
        i,
    )
}

/// Returns the indices of all number tokens in `tokens`.
pub fn number_token_indices(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind.is_number())
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn simple_sentence() {
        let toks = tokenize("Blood pressure is 144/90.");
        assert_eq!(texts(&toks), vec!["Blood", "pressure", "is", "144/90", "."]);
        assert_eq!(toks[3].number(), Some(NumberValue::Ratio(144, 90)));
        assert_eq!(toks[4].kind, TokenKind::Punct);
    }

    #[test]
    fn decimal_number() {
        let toks = tokenize("temperature of 98.3, and weight of 154 pounds");
        let nums: Vec<_> = toks.iter().filter_map(Token::number).collect();
        assert_eq!(nums, vec![NumberValue::Float(98.3), NumberValue::Int(154)]);
    }

    #[test]
    fn trailing_period_not_part_of_number() {
        let toks = tokenize("pulse of 84.");
        assert_eq!(texts(&toks), vec!["pulse", "of", "84", "."]);
        assert_eq!(toks[2].number(), Some(NumberValue::Int(84)));
    }

    #[test]
    fn hyphenated_words_join() {
        let toks = tokenize("fifty-four years");
        assert_eq!(texts(&toks), vec!["fifty-four", "years"]);
        assert!(toks[0].kind.is_word());
    }

    #[test]
    fn number_hyphen_word_splits() {
        let toks = tokenize("a 50-year-old woman");
        assert_eq!(texts(&toks), vec!["a", "50", "-", "year-old", "woman"]);
        assert_eq!(toks[1].number(), Some(NumberValue::Int(50)));
    }

    #[test]
    fn apostrophes_join() {
        let toks = tokenize("doesn't smoke");
        assert_eq!(texts(&toks), vec!["doesn't", "smoke"]);
    }

    #[test]
    fn punctuation_tokens() {
        let toks = tokenize("Vitals: BP, pulse; weight?");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec![":", ",", ";", "?"]);
    }

    #[test]
    fn spans_reconstruct_source() {
        let src = "Blood pressure is 144/90, pulse of 84.";
        for t in tokenize(src) {
            assert_eq!(t.span.slice(src), t.text);
        }
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn unicode_symbol_is_single_token() {
        let toks = tokenize("98.6° F");
        assert_eq!(texts(&toks), vec!["98.6", "°", "F"]);
        assert_eq!(toks[1].kind, TokenKind::Symbol);
    }

    #[test]
    fn number_indices_helper() {
        let toks = tokenize("pulse of 84, temperature of 98.3");
        assert_eq!(number_token_indices(&toks), vec![2, 6]);
    }

    #[test]
    fn alphanumeric_medical_words() {
        let toks = tokenize("S1 S2 regular BIRAD 4");
        assert_eq!(texts(&toks), vec!["S1", "S2", "regular", "BIRAD", "4"]);
        assert!(toks[0].kind.is_word());
        assert!(toks[4].kind.is_number());
    }
}
