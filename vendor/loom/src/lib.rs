//! Offline stand-in for [`loom`](https://docs.rs/loom).
//!
//! The build environment has no network access, so this crate provides
//! loom's API surface — `loom::model`, `loom::thread`, `loom::sync` —
//! backed by the real std primitives. Instead of exhaustively enumerating
//! schedules with a modeled scheduler, [`model`] re-runs the closure many
//! times on real threads, relying on OS scheduling jitter to vary the
//! interleavings. That is a probabilistic approximation: it catches the
//! common races and keeps the model tests *written* (and compiling against
//! loom's API), so swapping in the real crate needs only a dependency
//! change, not a test rewrite.
//!
//! Only the subset the workspace's model tests use is re-exported.

#![forbid(unsafe_code)]

/// How many times [`model`] re-runs the closure. Real loom explores every
/// schedule once; the stand-in buys interleaving coverage with repetition.
pub const MODEL_ITERATIONS: usize = 64;

/// Runs a concurrency model. See the crate docs for how this stand-in
/// differs from real loom's exhaustive schedule exploration.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..MODEL_ITERATIONS {
        f();
    }
}

/// Mirror of `loom::thread`.
pub mod thread {
    pub use std::thread::{current, park, spawn, yield_now, JoinHandle, Thread};
}

/// Mirror of `loom::sync`.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Mirror of `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}
