//! The ID3 decision tree (Quinlan 1986), as the paper implements it.
//!
//! §3.3: "According to information theory, Information Gain (Mutual
//! Information) of the predictor and dependent variable is a good measure of
//! the predictor's discriminating ability. Thus, the ID3 decision tree is
//! supposed to use less features than other decision tree algorithms."

use crate::dataset::Dataset;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Split-quality criterion.
///
/// The paper argues (§3.3) that information gain makes ID3 "use less
/// features than other decision tree algorithms"; the alternative criteria
/// exist to test that claim (ablation A5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitCriterion {
    /// Shannon information gain — Quinlan's ID3, the paper's choice.
    #[default]
    InformationGain,
    /// Gini impurity decrease — CART-style.
    GiniGain,
    /// Gain ratio (information gain / split info) — C4.5-style.
    GainRatio,
}

/// Training parameters.
#[derive(Debug, Clone, Copy)]
pub struct Id3Params {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum information gain to split; below it, emit a majority leaf.
    pub min_gain: f64,
    /// Minimum instances to attempt a split.
    pub min_split: usize,
    /// Split-quality criterion.
    pub criterion: SplitCriterion,
}

impl Default for Id3Params {
    fn default() -> Self {
        Id3Params {
            max_depth: 12,
            min_gain: 1e-9,
            min_split: 2,
            criterion: SplitCriterion::InformationGain,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        on_true: Box<Node>,
        on_false: Box<Node>,
    },
}

/// A trained ID3 tree.
#[derive(Debug, Clone)]
pub struct Id3Tree {
    root: Node,
    feature_names: Vec<String>,
    label_names: Vec<String>,
}

/// Shannon entropy of a label count vector, in bits.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Gini impurity of a label count vector.
pub fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p
        })
        .sum::<f64>()
}

fn split_counts(
    data: &Dataset,
    indices: &[usize],
    feature: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n_labels = data.n_labels();
    let mut all = vec![0usize; n_labels];
    let mut pos = vec![0usize; n_labels];
    let mut neg = vec![0usize; n_labels];
    for &i in indices {
        let inst = &data.instances[i];
        all[inst.label] += 1;
        if inst.features[feature] {
            pos[inst.label] += 1;
        } else {
            neg[inst.label] += 1;
        }
    }
    (all, pos, neg)
}

/// Information gain of splitting `indices` on boolean `feature`.
pub fn information_gain(data: &Dataset, indices: &[usize], feature: usize) -> f64 {
    let (all, pos, neg) = split_counts(data, indices, feature);
    let total = indices.len() as f64;
    let n_pos: usize = pos.iter().sum();
    let n_neg: usize = neg.iter().sum();
    entropy(&all) - (n_pos as f64 / total) * entropy(&pos) - (n_neg as f64 / total) * entropy(&neg)
}

/// Gini impurity decrease of splitting `indices` on boolean `feature`.
pub fn gini_gain(data: &Dataset, indices: &[usize], feature: usize) -> f64 {
    let (all, pos, neg) = split_counts(data, indices, feature);
    let total = indices.len() as f64;
    let n_pos: usize = pos.iter().sum();
    let n_neg: usize = neg.iter().sum();
    gini(&all) - (n_pos as f64 / total) * gini(&pos) - (n_neg as f64 / total) * gini(&neg)
}

/// C4.5 gain ratio: information gain normalized by the split's own entropy.
pub fn gain_ratio(data: &Dataset, indices: &[usize], feature: usize) -> f64 {
    let ig = information_gain(data, indices, feature);
    let n_pos = indices
        .iter()
        .filter(|&&i| data.instances[i].features[feature])
        .count();
    let split_info = entropy(&[n_pos, indices.len() - n_pos]);
    if split_info <= f64::EPSILON {
        0.0
    } else {
        ig / split_info
    }
}

/// Dispatch on the configured criterion.
pub fn split_quality(
    data: &Dataset,
    indices: &[usize],
    feature: usize,
    criterion: SplitCriterion,
) -> f64 {
    match criterion {
        SplitCriterion::InformationGain => information_gain(data, indices, feature),
        SplitCriterion::GiniGain => gini_gain(data, indices, feature),
        SplitCriterion::GainRatio => gain_ratio(data, indices, feature),
    }
}

impl Id3Tree {
    /// Trains a tree on the full dataset.
    pub fn train(data: &Dataset, params: Id3Params) -> Id3Tree {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = build(data, &indices, params, 0);
        Id3Tree {
            root,
            feature_names: data.feature_names.clone(),
            label_names: data.label_names.clone(),
        }
    }

    /// Predicted label index for a feature vector.
    pub fn predict(&self, features: &[bool]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    on_true,
                    on_false,
                } => {
                    let v = features.get(*feature).copied().unwrap_or(false);
                    node = if v { on_true } else { on_false };
                }
            }
        }
    }

    /// Predicted label name.
    pub fn predict_name(&self, features: &[bool]) -> &str {
        &self.label_names[self.predict(features)]
    }

    /// The distinct features the tree actually tests. The paper reports
    /// this: "The number of features used in the decision tree ranges from
    /// four to seven."
    pub fn features_used(&self) -> Vec<usize> {
        let mut set = BTreeSet::new();
        collect_features(&self.root, &mut set);
        set.into_iter().collect()
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        count_leaves(&self.root)
    }

    /// Maximum depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        depth(&self.root)
    }

    /// Pretty-prints the tree with feature and label names.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(
            &self.root,
            &self.feature_names,
            &self.label_names,
            0,
            &mut out,
        );
        out
    }

    /// Feature names, aligned with the indices in [`TreeNode::Split`].
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Label names, aligned with the indices in [`TreeNode::Leaf`].
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// A structural snapshot of the tree for external analyzers (the
    /// internal node type stays private so training can evolve freely).
    pub fn structure(&self) -> TreeNode {
        fn snap(node: &Node) -> TreeNode {
            match node {
                Node::Leaf { label } => TreeNode::Leaf { label: *label },
                Node::Split {
                    feature,
                    on_true,
                    on_false,
                } => TreeNode::Split {
                    feature: *feature,
                    on_true: Box::new(snap(on_true)),
                    on_false: Box::new(snap(on_false)),
                },
            }
        }
        snap(&self.root)
    }
}

/// A read-only view of a trained tree's structure (see
/// [`Id3Tree::structure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// A leaf predicting the label at this index.
    Leaf {
        /// Label index into [`Id3Tree::label_names`].
        label: usize,
    },
    /// An internal test on one boolean feature.
    Split {
        /// Feature index into [`Id3Tree::feature_names`].
        feature: usize,
        /// Subtree taken when the feature is present.
        on_true: Box<TreeNode>,
        /// Subtree taken when the feature is absent.
        on_false: Box<TreeNode>,
    },
}

fn build(data: &Dataset, indices: &[usize], params: Id3Params, depth: usize) -> Node {
    let mut counts = vec![0usize; data.n_labels()];
    for &i in indices {
        counts[data.instances[i].label] += 1;
    }
    let majority = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(l, _)| l)
        .unwrap_or(0);
    // Pure node, depth limit, or too few instances: leaf.
    let n_classes_present = counts.iter().filter(|&&c| c > 0).count();
    if n_classes_present <= 1 || depth >= params.max_depth || indices.len() < params.min_split {
        return Node::Leaf { label: majority };
    }
    // Best feature by the configured split criterion.
    let mut best: Option<(usize, f64)> = None;
    for f in 0..data.n_features() {
        let g = split_quality(data, indices, f, params.criterion);
        if best.map(|(_, bg)| g > bg).unwrap_or(true) {
            best = Some((f, g));
        }
    }
    let Some((feature, gain)) = best else {
        return Node::Leaf { label: majority };
    };
    if gain < params.min_gain {
        return Node::Leaf { label: majority };
    }
    let (pos, neg): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| data.instances[i].features[feature]);
    if pos.is_empty() || neg.is_empty() {
        return Node::Leaf { label: majority };
    }
    Node::Split {
        feature,
        on_true: Box::new(build(data, &pos, params, depth + 1)),
        on_false: Box::new(build(data, &neg, params, depth + 1)),
    }
}

fn collect_features(node: &Node, out: &mut BTreeSet<usize>) {
    if let Node::Split {
        feature,
        on_true,
        on_false,
    } = node
    {
        out.insert(*feature);
        collect_features(on_true, out);
        collect_features(on_false, out);
    }
}

fn count_leaves(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::Split {
            on_true, on_false, ..
        } => count_leaves(on_true) + count_leaves(on_false),
    }
}

fn depth(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::Split {
            on_true, on_false, ..
        } => 1 + depth(on_true).max(depth(on_false)),
    }
}

fn render_node(
    node: &Node,
    features: &[String],
    labels: &[String],
    indent: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Leaf { label } => {
            let _ = writeln!(out, "{pad}=> {}", labels[*label]);
        }
        Node::Split {
            feature,
            on_true,
            on_false,
        } => {
            let _ = writeln!(out, "{pad}[{}]?", features[*feature]);
            let _ = writeln!(out, "{pad}yes:");
            render_node(on_true, features, labels, indent + 1, out);
            let _ = writeln!(out, "{pad}no:");
            render_node(on_false, features, labels, indent + 1, out);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn smoking_toy() -> Dataset {
        let mut b = DatasetBuilder::new();
        // never
        b.add(&["deny".into()], "never");
        b.add(&["never".into(), "smoke".into()], "never");
        b.add(&["none".into()], "never");
        b.add(&["deny".into(), "tobacco".into()], "never");
        // former
        b.add(&["quit".into(), "smoke".into()], "former");
        b.add(&["quit".into(), "year".into()], "former");
        b.add(&["former".into(), "smoker".into()], "former");
        // current
        b.add(&["currently".into(), "smoker".into()], "current");
        b.add(&["smoke".into(), "pack".into()], "current");
        b.add(&["current".into(), "smoker".into()], "current");
        b.build()
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[0, 0]), 0.0);
        assert_eq!(entropy(&[4]), 0.0);
        assert!((entropy(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gain_prefers_discriminative_feature() {
        let d = smoking_toy();
        let idx: Vec<usize> = (0..d.len()).collect();
        let quit = d.feature_names.iter().position(|f| f == "quit").unwrap();
        let smoke = d.feature_names.iter().position(|f| f == "smoke").unwrap();
        assert!(
            information_gain(&d, &idx, quit) > information_gain(&d, &idx, smoke),
            "'quit' separates former from the rest better than 'smoke'"
        );
    }

    #[test]
    fn perfect_training_fit_on_separable_data() {
        let d = smoking_toy();
        let t = Id3Tree::train(&d, Id3Params::default());
        for inst in &d.instances {
            assert_eq!(t.predict(&inst.features), inst.label);
        }
    }

    #[test]
    fn features_used_is_small() {
        let d = smoking_toy();
        let t = Id3Tree::train(&d, Id3Params::default());
        let used = t.features_used();
        assert!(!used.is_empty());
        assert!(used.len() <= 6, "ID3 should be parsimonious, used {used:?}");
    }

    #[test]
    fn depth_limit_respected() {
        let d = smoking_toy();
        let t = Id3Tree::train(
            &d,
            Id3Params {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!(t.depth() <= 1);
    }

    #[test]
    fn predict_name_maps_labels() {
        let d = smoking_toy();
        let t = Id3Tree::train(&d, Id3Params::default());
        let quit = d.feature_names.iter().position(|f| f == "quit").unwrap();
        let mut fv = vec![false; d.n_features()];
        fv[quit] = true;
        assert_eq!(t.predict_name(&fv), "former");
    }

    #[test]
    fn unseen_feature_vector_falls_through() {
        let d = smoking_toy();
        let t = Id3Tree::train(&d, Id3Params::default());
        // All-false vector: follows the no-branches to some majority leaf.
        let fv = vec![false; d.n_features()];
        let label = t.predict(&fv);
        assert!(label < d.n_labels());
    }

    #[test]
    fn short_feature_vectors_treated_as_false() {
        let d = smoking_toy();
        let t = Id3Tree::train(&d, Id3Params::default());
        let label = t.predict(&[]);
        assert!(label < d.n_labels());
    }

    #[test]
    fn render_contains_names() {
        let d = smoking_toy();
        let t = Id3Tree::train(&d, Id3Params::default());
        let r = t.render();
        assert!(r.contains("=>"));
        assert!(r.contains("never") || r.contains("former") || r.contains("current"));
    }

    #[test]
    fn single_class_dataset_is_one_leaf() {
        let mut b = DatasetBuilder::new();
        b.add(&["x".into()], "only");
        b.add(&["y".into()], "only");
        let d = b.build();
        let t = Id3Tree::train(&d, Id3Params::default());
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset::new(vec!["a".into()]);
        let _ = Id3Tree::train(&d, Id3Params::default());
    }

    #[test]
    fn gini_basics() {
        assert_eq!(gini(&[4]), 0.0, "pure");
        assert!((gini(&[1, 1]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn all_criteria_fit_separable_data() {
        let d = smoking_toy();
        for criterion in [
            SplitCriterion::InformationGain,
            SplitCriterion::GiniGain,
            SplitCriterion::GainRatio,
        ] {
            let t = Id3Tree::train(
                &d,
                Id3Params {
                    criterion,
                    ..Default::default()
                },
            );
            for inst in &d.instances {
                assert_eq!(t.predict(&inst.features), inst.label, "{criterion:?}");
            }
        }
    }

    #[test]
    fn criteria_agree_on_the_obvious_feature() {
        let d = smoking_toy();
        let idx: Vec<usize> = (0..d.len()).collect();
        let quit = d.feature_names.iter().position(|f| f == "quit").unwrap();
        assert!(information_gain(&d, &idx, quit) > 0.0);
        assert!(gini_gain(&d, &idx, quit) > 0.0);
        assert!(gain_ratio(&d, &idx, quit) > 0.0);
    }

    #[test]
    fn gain_ratio_zero_on_constant_feature() {
        let mut b = crate::dataset::DatasetBuilder::new();
        b.add(&["always".into()], "a");
        b.add(&["always".into()], "b");
        let d = b.build();
        let idx: Vec<usize> = (0..d.len()).collect();
        assert_eq!(gain_ratio(&d, &idx, 0), 0.0, "split info is zero");
    }
}
