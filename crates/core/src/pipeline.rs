//! The end-to-end pipeline: record in, structured information out.
//!
//! Mirrors Figure 2 of the paper: tokenization/splitting/tagging
//! (cmr-text/cmr-postag for GATE), the link grammar parser, the morphology
//! engine (cmr-lexicon for WordNet), the ontology (cmr-ontology for UMLS),
//! and the extractors of this crate; the output is a structured record
//! (serde-serializable, standing in for the paper's Access database).

use crate::degradation::{DegradationReport, FieldProvenance, Tier};
use crate::numeric::{AssociationMethod, MethodUsed, NumericExtractor, NumericHit};
use crate::schema::Schema;
use crate::terms::MedicalTermExtractor;
use cmr_ontology::{Ontology, ValueSet};
use cmr_text::{NumberValue, Record};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Structured information extracted from one record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExtractedRecord {
    /// Patient identifier from the `Patient:` section.
    pub patient_id: Option<String>,
    /// Numeric attributes by name.
    pub numeric: BTreeMap<String, NumberValue>,
    /// How each numeric attribute was associated (same keys as `numeric`).
    pub numeric_methods: BTreeMap<String, crate::numeric::MethodUsed>,
    /// Predefined past-medical-history terms (concept preferred names).
    pub predefined_medical: Vec<String>,
    /// Other past-medical-history terms.
    pub other_medical: Vec<String>,
    /// Predefined past-surgical-history terms.
    pub predefined_surgical: Vec<String>,
    /// Other past-surgical-history terms.
    pub other_surgical: Vec<String>,
    /// Which tier served each field (numeric attributes by name, term
    /// fields by field name) and with what confidence.
    pub provenance: BTreeMap<String, FieldProvenance>,
    /// The degradation story of this extraction: per-tier counts,
    /// link-parse failures, salvage usage.
    pub degradation: DegradationReport,
}

impl ExtractedRecord {
    /// Convenience accessor for a numeric attribute.
    pub fn numeric(&self, name: &str) -> Option<NumberValue> {
        self.numeric.get(name).copied()
    }
}

/// Per-stage wall time of one instrumented extraction (see
/// [`Pipeline::extract_instrumented`]). Link-parse time is a subset of
/// `numeric_nanos` and is reported separately through
/// [`Pipeline::parser_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractTiming {
    /// Wall time in the numeric extractor (tagging, number annotation,
    /// link parsing, association).
    pub numeric_nanos: u64,
    /// Wall time in the medical-term extractor (POS patterns,
    /// normalization, ontology lookup).
    pub terms_nanos: u64,
}

/// The extraction pipeline (numeric + medical terms; categorical fields
/// need training data and live in [`crate::CategoricalExtractor`]).
///
/// The schema and ontology are held behind [`Arc`], so a worker pool can
/// construct one pipeline per thread against shared read-only configuration
/// without cloning the concept table (see `cmr-engine`). The pipeline
/// itself is `!Sync` — the link parser keeps a per-instance structure
/// cache — which is exactly why workers each own one.
pub struct Pipeline {
    schema: Arc<Schema>,
    numeric: NumericExtractor,
    terms: MedicalTermExtractor,
    predefined_medical: ValueSet,
    predefined_surgical: ValueSet,
    salvage: bool,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::with_default_schema()
    }
}

impl Pipeline {
    /// Paper schema, full ontology, link-grammar association with pattern
    /// fallback.
    pub fn with_default_schema() -> Pipeline {
        Pipeline::new(
            Schema::paper(),
            Ontology::full(),
            AssociationMethod::LinkWithFallback,
        )
    }

    /// Fully configured pipeline. Accepts owned configuration or
    /// pre-shared `Arc`s (workers in a pool pass clones of the same
    /// `Arc<Schema>` / `Arc<Ontology>`).
    pub fn new(
        schema: impl Into<Arc<Schema>>,
        ontology: impl Into<Arc<Ontology>>,
        method: AssociationMethod,
    ) -> Pipeline {
        Pipeline {
            schema: schema.into(),
            numeric: NumericExtractor::with_method(method),
            terms: MedicalTermExtractor::new(ontology),
            predefined_medical: ValueSet::predefined_medical_history(),
            predefined_surgical: ValueSet::predefined_surgical_history(),
            salvage: true,
        }
    }

    /// Enables or disables the tier-3 salvage stage (on by default).
    /// Salvage only ever runs for fields the link-grammar and pattern
    /// tiers both missed, so on clean input the output is identical either
    /// way; disabling it is for ablations and identity tests.
    pub fn with_salvage(mut self, salvage: bool) -> Pipeline {
        self.salvage = salvage;
        self
    }

    /// Selects the medical-term pattern inventory (the paper's four
    /// patterns by default; see [`crate::PatternSet`]).
    pub fn with_term_patterns(mut self, patterns: crate::PatternSet) -> Pipeline {
        self.terms.set_patterns(patterns);
        self
    }

    /// Attaches a pool-wide link-parse structure cache
    /// ([`cmr_linkgram::SharedParseCache`]): per-thread pipelines sharing
    /// one parse each sentence shape once per pool instead of once per
    /// worker.
    pub fn with_shared_parse_cache(mut self, cache: cmr_linkgram::SharedParseCache) -> Pipeline {
        self.numeric.set_shared_parse_cache(cache);
        self
    }

    /// Installs a cooperative-cancellation flag on the link parser. The
    /// engine's watchdog raises it when a record exceeds its wall-clock
    /// deadline, so a pathological sentence cannot pin a worker inside the
    /// O(n³) search.
    pub fn with_cancel_flag(mut self, flag: Arc<std::sync::atomic::AtomicBool>) -> Pipeline {
        self.numeric.set_cancel_flag(flag);
        self
    }

    /// The schema in use.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Link-parser cache and timing counters (see
    /// [`cmr_linkgram::ParserStats`]); cumulative over this pipeline's
    /// lifetime.
    pub fn parser_stats(&self) -> cmr_linkgram::ParserStats {
        self.numeric.parser_stats()
    }

    /// Extracts everything the untrained pipeline can from one record.
    pub fn extract(&self, text: &str) -> ExtractedRecord {
        self.extract_parsed(&Record::parse(text))
    }

    /// Like [`Pipeline::extract`], but over an already-parsed [`Record`].
    /// The record is parsed exactly once per extraction — section routing
    /// for numeric attributes and for term sections shares this parse.
    pub fn extract_parsed(&self, record: &Record) -> ExtractedRecord {
        self.extract_instrumented(record, &crate::ExtractBudget::NONE)
            .expect("unlimited budget never trips")
            .0
    }

    /// Like [`Pipeline::extract_parsed`], but enforces a per-record
    /// [`crate::ExtractBudget`]. The sentence/step budget applies to the
    /// numeric stage (where the link parser lives); the deadline is also
    /// re-checked between term sections.
    pub fn extract_budgeted(
        &self,
        record: &Record,
        budget: &crate::ExtractBudget,
    ) -> Result<ExtractedRecord, crate::BudgetExceeded> {
        self.extract_instrumented(record, budget)
            .map(|(out, _)| out)
    }

    /// Budgeted extraction that also reports per-stage wall time, so batch
    /// drivers (see `cmr-engine`) can fill stage histograms without timing
    /// the pipeline from outside.
    pub fn extract_instrumented(
        &self,
        record: &Record,
        budget: &crate::ExtractBudget,
    ) -> Result<(ExtractedRecord, ExtractTiming), crate::BudgetExceeded> {
        let mut timing = ExtractTiming::default();
        let mut out = ExtractedRecord {
            patient_id: record.patient_id.clone(),
            ..ExtractedRecord::default()
        };

        // Numeric attributes.
        let numeric_start = std::time::Instant::now();
        let numeric_hits = self
            .numeric
            .extract_counted(record, &self.schema.numeric, budget);
        timing.numeric_nanos = numeric_start.elapsed().as_nanos() as u64;
        let (hits, parse_failures) = numeric_hits?;
        out.degradation.parse_failures = parse_failures;
        for NumericHit {
            field,
            value,
            method,
        } in hits
        {
            out.numeric.insert(field.clone(), value);
            out.provenance
                .insert(field.clone(), FieldProvenance::of_method(method));
            out.degradation.tiers.record(Tier::of_method(method));
            out.numeric_methods.insert(field, method);
        }

        let terms_start = std::time::Instant::now();

        // Medical-term attributes. Term extraction has no step notion, but
        // the deadline still applies between term fields.
        for term_field in &self.schema.terms {
            if let Some(deadline) = budget.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(crate::BudgetExceeded { sentences_done: 0 });
                }
            }
            let (predefined_set, slots) = match term_field.name.as_str() {
                "past_medical_history" => (
                    &self.predefined_medical,
                    (&mut out.predefined_medical, &mut out.other_medical),
                ),
                "past_surgical_history" => (
                    &self.predefined_surgical,
                    (&mut out.predefined_surgical, &mut out.other_surgical),
                ),
                _ => continue,
            };
            let mut any_section_present = false;
            let mut extracted = 0u32;
            for section_name in &term_field.sections {
                let Some(section) = record.section(section_name) else {
                    continue;
                };
                any_section_present = true;
                let (pre, other) = self
                    .terms
                    .extract_partitioned(&section.body, predefined_set);
                for hit in pre {
                    let name = hit.concept.preferred.to_string();
                    if !slots.0.contains(&name) {
                        slots.0.push(name);
                        extracted += 1;
                    }
                }
                for hit in other {
                    let name = hit.concept.preferred.to_string();
                    if !slots.1.contains(&name) {
                        slots.1.push(name);
                        extracted += 1;
                    }
                }
            }
            if any_section_present {
                for _ in 0..extracted {
                    out.degradation.tiers.record(Tier::Pattern);
                }
                if extracted > 0 {
                    out.provenance
                        .insert(term_field.name.clone(), FieldProvenance::term_pattern());
                }
            } else if self.salvage {
                // Tier-3 term salvage: every section this field is dictated
                // in is gone (garbled headers merge their text into
                // neighbouring sections), so scan the whole record. This
                // recovers terms at the cost of precision — terms from
                // *other* history sections (e.g. family history) leak in.
                let whole: String = join_bodies(record, None);
                let (pre, other) = self.terms.extract_partitioned(&whole, predefined_set);
                let mut salvaged = 0u32;
                for hit in pre {
                    let name = hit.concept.preferred.to_string();
                    if !slots.0.contains(&name) {
                        slots.0.push(name);
                        salvaged += 1;
                    }
                }
                for hit in other {
                    let name = hit.concept.preferred.to_string();
                    if !slots.1.contains(&name) {
                        slots.1.push(name);
                        salvaged += 1;
                    }
                }
                if salvaged > 0 {
                    for _ in 0..salvaged {
                        out.degradation.tiers.record(Tier::Salvage);
                    }
                    out.provenance
                        .insert(term_field.name.clone(), FieldProvenance::term_salvage());
                    out.degradation
                        .salvaged_fields
                        .push(term_field.name.clone());
                }
            }
        }

        // Tier-3 numeric salvage: only for attributes both real tiers
        // missed. Scan the sections the spec routes to when any survived;
        // when the spec's sections are all gone (garbled headers), scan the
        // whole record — under header garbling the text still exists, just
        // inside a neighbouring section's body.
        if self.salvage {
            for spec in &self.schema.numeric {
                if out.numeric.contains_key(&spec.name) {
                    continue;
                }
                if let Some(deadline) = budget.deadline {
                    if std::time::Instant::now() >= deadline {
                        return Err(crate::BudgetExceeded { sentences_done: 0 });
                    }
                }
                let routed = join_bodies(record, Some(&spec.sections));
                let text = if routed.is_empty() {
                    join_bodies(record, None)
                } else {
                    routed
                };
                if let Some(value) = crate::salvage::salvage_numeric(&text, spec) {
                    out.numeric.insert(spec.name.clone(), value);
                    out.numeric_methods
                        .insert(spec.name.clone(), MethodUsed::Salvage);
                    out.provenance.insert(
                        spec.name.clone(),
                        FieldProvenance::of_method(MethodUsed::Salvage),
                    );
                    out.degradation.tiers.record(Tier::Salvage);
                    out.degradation.salvaged_fields.push(spec.name.clone());
                }
            }
        }
        out.degradation.degraded = out.degradation.tiers.salvage > 0;
        timing.terms_nanos = terms_start.elapsed().as_nanos() as u64;
        Ok((out, timing))
    }
}

/// Joins section bodies, newline-separated: all of them, or only those
/// whose header matches one of `sections` (case-insensitive, the numeric
/// extractor's routing rule). An empty `sections` filter matches nothing —
/// callers treat that as "scan everything" via the `None` branch.
fn join_bodies(record: &Record, sections: Option<&[String]>) -> String {
    let mut out = String::new();
    for section in &record.sections {
        let keep = match sections {
            None => true,
            Some(filter) => {
                let key = section.key();
                filter.iter().any(|x| x.to_lowercase() == key)
            }
        };
        if keep {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&section.body);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_corpus::APPENDIX_RECORD;

    #[test]
    fn appendix_record_end_to_end() {
        let p = Pipeline::with_default_schema();
        let out = p.extract(APPENDIX_RECORD);
        assert_eq!(out.patient_id.as_deref(), Some("2"));
        assert_eq!(
            out.numeric("blood_pressure"),
            Some(NumberValue::Ratio(142, 78))
        );
        assert_eq!(out.numeric("pulse"), Some(NumberValue::Int(96)));
        assert_eq!(out.numeric("weight"), Some(NumberValue::Int(211)));
        assert_eq!(out.numeric("menarche_age"), Some(NumberValue::Int(10)));
        assert_eq!(out.numeric("gravida"), Some(NumberValue::Int(4)));
        assert_eq!(out.numeric("para"), Some(NumberValue::Int(3)));
        assert_eq!(out.numeric("first_birth_age"), Some(NumberValue::Int(18)));
        assert_eq!(out.numeric("age"), Some(NumberValue::Int(50)));
        // The Appendix vitals line has no temperature.
        assert_eq!(out.numeric("temperature"), None);
        // PMH: diabetes, heart disease, high blood pressure (→ hypertension),
        // hypercholesterolemia, bronchitis, arrhythmia, depression.
        assert!(out.predefined_medical.contains(&"diabetes".to_string()));
        assert!(out.predefined_medical.contains(&"hypertension".to_string()));
        assert!(out.predefined_medical.contains(&"arrhythmia".to_string()));
        assert!(out.other_medical.contains(&"bronchitis".to_string()));
        // PSH: cervical laminectomy → laminectomy (not predefined).
        assert!(
            out.other_surgical.contains(&"laminectomy".to_string()),
            "{:?}",
            out.other_surgical
        );
        assert!(out.predefined_surgical.is_empty());
    }

    #[test]
    fn serializes_to_json() {
        let p = Pipeline::with_default_schema();
        let out = p.extract(APPENDIX_RECORD);
        let json = serde_json::to_string_pretty(&out).expect("serializes");
        assert!(json.contains("blood_pressure"));
        let back: ExtractedRecord = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.numeric("pulse"), out.numeric("pulse"));
    }

    #[test]
    fn empty_record() {
        let p = Pipeline::with_default_schema();
        let out = p.extract("");
        assert!(out.numeric.is_empty());
        assert!(out.predefined_medical.is_empty());
    }

    #[test]
    fn clean_record_is_not_degraded() {
        let p = Pipeline::with_default_schema();
        let out = p.extract(APPENDIX_RECORD);
        assert!(!out.degradation.degraded);
        assert!(out.degradation.salvaged_fields.is_empty());
        assert_eq!(out.degradation.tiers.salvage, 0);
        assert!(
            out.degradation.tiers.link_grammar > 0,
            "{:?}",
            out.degradation
        );
        // Every numeric field has provenance.
        for field in out.numeric.keys() {
            assert!(out.provenance.contains_key(field), "{field}");
        }
    }

    #[test]
    fn salvage_recovers_ocr_garbled_vitals() {
        // The Vitals header is garbled (lowercase, no colon), so its text
        // merges into the HPI body; the sentence itself is OCR-corrupted,
        // so neither the link grammar nor the patterns can read it.
        let text = "HPI:  Ms. 2 is a 50-year-old woman.\n\
                    vitals  B1ood pre55ure is l44/9O.\n";
        let p = Pipeline::with_default_schema();
        let out = p.extract(text);
        assert_eq!(
            out.numeric("blood_pressure"),
            Some(NumberValue::Ratio(144, 90))
        );
        assert_eq!(
            out.numeric_methods.get("blood_pressure"),
            Some(&crate::MethodUsed::Salvage)
        );
        assert!(out.degradation.degraded);
        assert!(out
            .degradation
            .salvaged_fields
            .contains(&"blood_pressure".to_string()));
        let prov = out.provenance.get("blood_pressure").expect("provenance");
        assert_eq!(prov.tier, crate::Tier::Salvage);
        assert!(prov.confidence < 0.8);

        // With salvage disabled the field is simply missing.
        let bare = Pipeline::with_default_schema().with_salvage(false);
        let out = bare.extract(text);
        assert_eq!(out.numeric("blood_pressure"), None);
        assert!(!out.degradation.degraded);
    }

    #[test]
    fn parse_failures_are_counted_for_fragments() {
        // A fragment with a mention and a number: the link tier fails (and
        // is counted), the pattern tier recovers the value.
        let text = "Vitals:  Blood pressure: 144/90.\n";
        let p = Pipeline::with_default_schema();
        let out = p.extract(text);
        assert_eq!(
            out.numeric("blood_pressure"),
            Some(NumberValue::Ratio(144, 90))
        );
        assert!(out.degradation.parse_failures.total() > 0);
        assert!(!out.degradation.degraded, "fragments are tier 2, not 3");
    }
}
