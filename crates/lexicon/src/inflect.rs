//! Inflection generation — the paper's "infected variants".
//!
//! §3.1: "Regarding infected variants, we used WordNet and some heuristics to
//! automatically generate them from original concepts." Feature names like
//! `number of pregnancies` must also match `pregnancy`; this module generates
//! the inflected surface forms of a lemma (and of a multi-word phrase's head
//! word) so feature identification can match any of them.

use crate::irregular::{IRREGULAR_PART, IRREGULAR_PAST, IRREGULAR_PLURAL};
use std::collections::HashMap;
use std::sync::OnceLock;

fn past_table() -> &'static HashMap<&'static str, &'static str> {
    static T: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    T.get_or_init(|| IRREGULAR_PAST.iter().copied().collect())
}

fn part_table() -> &'static HashMap<&'static str, &'static str> {
    static T: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    T.get_or_init(|| IRREGULAR_PART.iter().copied().collect())
}

fn plural_table() -> &'static HashMap<&'static str, &'static str> {
    static T: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    T.get_or_init(|| IRREGULAR_PLURAL.iter().copied().collect())
}

fn is_vowel(c: u8) -> bool {
    matches!(c, b'a' | b'e' | b'i' | b'o' | b'u')
}

/// Plural of a noun lemma.
pub fn noun_plural(lemma: &str) -> String {
    let w = lemma.to_lowercase();
    if let Some(p) = plural_table().get(w.as_str()) {
        return (*p).to_string();
    }
    let b = w.as_bytes();
    if w.ends_with('s')
        || w.ends_with('x')
        || w.ends_with('z')
        || w.ends_with("ch")
        || w.ends_with("sh")
    {
        return format!("{w}es");
    }
    if w.ends_with('y') && b.len() >= 2 && !is_vowel(b[b.len() - 2]) {
        return format!("{}ies", &w[..w.len() - 1]);
    }
    if w.ends_with("is") && w.len() > 3 {
        // analysis → analyses (Greco-Latin)
        return format!("{}es", &w[..w.len() - 2]);
    }
    format!("{w}s")
}

/// Third-person singular present of a verb lemma.
pub fn verb_3sg(lemma: &str) -> String {
    let w = lemma.to_lowercase();
    match w.as_str() {
        "be" => return "is".to_string(),
        "have" => return "has".to_string(),
        "do" => return "does".to_string(),
        "go" => return "goes".to_string(),
        "undergo" => return "undergoes".to_string(),
        _ => {}
    }
    let b = w.as_bytes();
    if w.ends_with('s')
        || w.ends_with('x')
        || w.ends_with('z')
        || w.ends_with("ch")
        || w.ends_with("sh")
        || w.ends_with('o')
    {
        return format!("{w}es");
    }
    if w.ends_with('y') && b.len() >= 2 && !is_vowel(b[b.len() - 2]) {
        return format!("{}ies", &w[..w.len() - 1]);
    }
    format!("{w}s")
}

/// Whether the final consonant doubles before a vowel-initial suffix
/// (`stop` → `stopped`). Heuristic: CVC ending with a short single vowel.
fn doubles_final(w: &str) -> bool {
    let b = w.as_bytes();
    if b.len() < 3 {
        return false;
    }
    let (a, v, c) = (b[b.len() - 3], b[b.len() - 2], b[b.len() - 1]);
    // 'u' after 'q' acts as a consonant ("quit" → "quitting").
    let a_is_consonant = !is_vowel(a) || (a == b'u' && b.len() >= 4 && b[b.len() - 4] == b'q');
    a_is_consonant && is_vowel(v) && !is_vowel(c) && !matches!(c, b'w' | b'x' | b'y')
        // Only double for short stems; longer stems usually stress earlier.
        && w.len() <= 4
}

/// Simple past of a verb lemma.
pub fn verb_past(lemma: &str) -> String {
    let w = lemma.to_lowercase();
    if let Some(p) = past_table().get(w.as_str()) {
        return (*p).to_string();
    }
    let b = w.as_bytes();
    if w.ends_with('e') {
        return format!("{w}d");
    }
    if w.ends_with('y') && b.len() >= 2 && !is_vowel(b[b.len() - 2]) {
        return format!("{}ied", &w[..w.len() - 1]);
    }
    if doubles_final(&w) {
        let last = *b.last().expect("non-empty") as char;
        return format!("{w}{last}ed");
    }
    format!("{w}ed")
}

/// Past participle of a verb lemma.
pub fn verb_past_participle(lemma: &str) -> String {
    let w = lemma.to_lowercase();
    if let Some(p) = part_table().get(w.as_str()) {
        return (*p).to_string();
    }
    verb_past(&w)
}

/// Present participle / gerund of a verb lemma.
pub fn verb_gerund(lemma: &str) -> String {
    let w = lemma.to_lowercase();
    if w == "be" {
        return "being".to_string();
    }
    let b = w.as_bytes();
    if w.ends_with("ie") {
        return format!("{}ying", &w[..w.len() - 2]);
    }
    if w.ends_with('e') && !w.ends_with("ee") && w.len() > 2 {
        return format!("{}ing", &w[..w.len() - 1]);
    }
    if doubles_final(&w) {
        let last = *b.last().expect("non-empty") as char;
        return format!("{w}{last}ing");
    }
    format!("{w}ing")
}

/// All inflected variants of a single word, across classes. Includes the
/// lemma itself. Used to widen feature-keyword matching exactly as the paper
/// prescribes.
pub fn variants(lemma: &str) -> Vec<String> {
    let w = lemma.to_lowercase();
    let mut out = vec![w.clone()];
    for v in [
        noun_plural(&w),
        verb_3sg(&w),
        verb_past(&w),
        verb_past_participle(&w),
        verb_gerund(&w),
    ] {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Inflected variants of a multi-word phrase: the head (last) word is
/// inflected, earlier words stay fixed (`live birth` → `live births`).
pub fn phrase_variants(phrase: &str) -> Vec<String> {
    let words: Vec<&str> = phrase.split_whitespace().collect();
    match words.split_last() {
        None => Vec::new(),
        Some((head, [])) => variants(head),
        Some((head, rest)) => {
            let prefix = rest.join(" ");
            variants(head)
                .into_iter()
                .map(|v| format!("{prefix} {v}"))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals() {
        assert_eq!(noun_plural("pound"), "pounds");
        assert_eq!(noun_plural("pregnancy"), "pregnancies");
        assert_eq!(noun_plural("mass"), "masses");
        assert_eq!(noun_plural("branch"), "branches");
        assert_eq!(noun_plural("diagnosis"), "diagnoses");
        assert_eq!(noun_plural("woman"), "women");
        assert_eq!(noun_plural("day"), "days");
    }

    #[test]
    fn third_singular() {
        assert_eq!(verb_3sg("deny"), "denies");
        assert_eq!(verb_3sg("smoke"), "smokes");
        assert_eq!(verb_3sg("be"), "is");
        assert_eq!(verb_3sg("have"), "has");
        assert_eq!(verb_3sg("reach"), "reaches");
        assert_eq!(verb_3sg("stay"), "stays");
    }

    #[test]
    fn pasts() {
        assert_eq!(verb_past("smoke"), "smoked");
        assert_eq!(verb_past("deny"), "denied");
        assert_eq!(verb_past("stop"), "stopped");
        assert_eq!(verb_past("quit"), "quit");
        assert_eq!(verb_past("undergo"), "underwent");
        assert_eq!(verb_past("play"), "played");
    }

    #[test]
    fn participles() {
        assert_eq!(verb_past_participle("undergo"), "undergone");
        assert_eq!(verb_past_participle("smoke"), "smoked");
        assert_eq!(verb_past_participle("take"), "taken");
    }

    #[test]
    fn gerunds() {
        assert_eq!(verb_gerund("smoke"), "smoking");
        assert_eq!(verb_gerund("stop"), "stopping");
        assert_eq!(verb_gerund("be"), "being");
        assert_eq!(verb_gerund("see"), "seeing");
        assert_eq!(verb_gerund("lie"), "lying");
        assert_eq!(verb_gerund("deny"), "denying");
    }

    #[test]
    fn variant_sets_include_lemma() {
        let v = variants("smoke");
        assert!(v.contains(&"smoke".to_string()));
        assert!(v.contains(&"smokes".to_string()));
        assert!(v.contains(&"smoked".to_string()));
        assert!(v.contains(&"smoking".to_string()));
    }

    #[test]
    fn phrase_head_inflection() {
        let v = phrase_variants("live birth");
        assert!(v.contains(&"live birth".to_string()));
        assert!(v.contains(&"live births".to_string()));
        let p = phrase_variants("pregnancy");
        assert!(p.contains(&"pregnancies".to_string()));
    }

    #[test]
    fn empty_phrase() {
        assert!(phrase_variants("").is_empty());
    }

    #[test]
    fn roundtrip_with_lemmatizer() {
        use crate::lemma::{Lemmatizer, WordClass};
        let l = Lemmatizer::new();
        for lemma in ["smoke", "deny", "reveal", "note", "use", "quit", "undergo"] {
            assert_eq!(
                l.lemma(&verb_past(lemma), WordClass::Verb),
                lemma,
                "past of {lemma}"
            );
            assert_eq!(
                l.lemma(&verb_3sg(lemma), WordClass::Verb),
                lemma,
                "3sg of {lemma}"
            );
            assert_eq!(
                l.lemma(&verb_gerund(lemma), WordClass::Verb),
                lemma,
                "gerund of {lemma}"
            );
        }
        for lemma in ["pound", "pregnancy", "mass", "diagnosis", "birth"] {
            assert_eq!(
                l.lemma(&noun_plural(lemma), WordClass::Noun),
                lemma,
                "plural of {lemma}"
            );
        }
    }
}
