//! The study's task schema.
//!
//! §5: "The task is to extract eighteen fields from the text. Some fields
//! contain more than one attribute. The extraction of twenty-four
//! attributes in total is required, among which are four … multi-valued
//! medical terms, eight numeric attributes, and twelve categorical
//! attributes."

use crate::spec::{CategoricalFieldSpec, FeatureSpec, TermFieldSpec, ValueKind};
use serde::{Deserialize, Serialize};

/// The complete extraction schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    /// Numeric attribute specs (the paper's eight, plus patient age which
    /// §3.1 names as an example numeric field).
    pub numeric: Vec<FeatureSpec>,
    /// Multi-valued medical-term fields.
    pub terms: Vec<TermFieldSpec>,
    /// Categorical fields.
    pub categorical: Vec<CategoricalFieldSpec>,
}

impl Default for Schema {
    fn default() -> Self {
        Schema::paper()
    }
}

impl Schema {
    /// The breast-cancer study schema from the paper.
    pub fn paper() -> Schema {
        let numeric = vec![
            FeatureSpec::new(
                "blood_pressure",
                &["blood pressure", "bp"],
                &["Vitals"],
                ValueKind::Ratio,
            ),
            FeatureSpec::new(
                "pulse",
                &["pulse", "heart rate"],
                &["Vitals"],
                ValueKind::Int,
            )
            .range(20.0, 250.0),
            FeatureSpec::new(
                "temperature",
                &["temperature", "temp"],
                &["Vitals"],
                ValueKind::Float,
            )
            .range(90.0, 110.0),
            FeatureSpec::new("weight", &["weight", "wt"], &["Vitals"], ValueKind::Int)
                .range(50.0, 600.0),
            FeatureSpec::new(
                "menarche_age",
                &["menarche", "menarche age"],
                &["GYN History"],
                ValueKind::Int,
            )
            .range(6.0, 25.0),
            FeatureSpec::new(
                "gravida",
                &["gravida", "pregnancies", "pregnancy"],
                &["GYN History"],
                ValueKind::Int,
            )
            .range(0.0, 20.0),
            FeatureSpec::new(
                "para",
                &["para", "live births", "live birth"],
                &["GYN History"],
                ValueKind::Int,
            )
            .range(0.0, 20.0),
            FeatureSpec::new(
                "first_birth_age",
                &["first live birth", "first birth"],
                &["GYN History"],
                ValueKind::Int,
            )
            .range(10.0, 50.0),
            FeatureSpec::new(
                "age",
                &["age"],
                &["History of Present Illness"],
                ValueKind::Int,
            )
            .range(18.0, 110.0)
            .year_old(),
        ];
        let terms = vec![
            TermFieldSpec {
                name: "past_medical_history".to_string(),
                sections: vec!["Past Medical History".to_string()],
            },
            TermFieldSpec {
                name: "past_surgical_history".to_string(),
                sections: vec!["Past Surgical History".to_string()],
            },
        ];
        let categorical = vec![
            CategoricalFieldSpec {
                name: "smoking".to_string(),
                sections: vec!["Social History".to_string()],
                classes: vec!["never".into(), "former".into(), "current".into()],
            },
            CategoricalFieldSpec {
                name: "alcohol".to_string(),
                sections: vec!["Social History".to_string()],
                classes: vec![
                    "never".into(),
                    "social".into(),
                    "1-2 per week".into(),
                    ">2 per week".into(),
                ],
            },
            CategoricalFieldSpec {
                name: "shape".to_string(),
                sections: vec!["Physical examination".to_string()],
                classes: vec![
                    "thin".into(),
                    "normal".into(),
                    "overweight".into(),
                    "obese".into(),
                ],
            },
            // Three of the schema's six binary attributes.
            CategoricalFieldSpec {
                name: "family_history_breast_cancer".to_string(),
                sections: vec!["Family History".to_string()],
                classes: vec!["no".into(), "yes".into()],
            },
            CategoricalFieldSpec {
                name: "drug_use".to_string(),
                sections: vec!["Social History".to_string()],
                classes: vec!["no".into(), "yes".into()],
            },
            CategoricalFieldSpec {
                name: "allergies_present".to_string(),
                sections: vec!["Allergies".to_string()],
                classes: vec!["no".into(), "yes".into()],
            },
        ];
        Schema {
            numeric,
            terms,
            categorical,
        }
    }

    /// Finds a numeric spec by name.
    pub fn numeric_spec(&self, name: &str) -> Option<&FeatureSpec> {
        self.numeric.iter().find(|s| s.name == name)
    }

    /// The eight numeric attributes the paper evaluates (everything except
    /// the bonus `age`).
    pub fn paper_numeric_names() -> [&'static str; 8] {
        [
            "blood_pressure",
            "pulse",
            "temperature",
            "weight",
            "menarche_age",
            "gravida",
            "para",
            "first_birth_age",
        ]
    }
}

// Workers in the extraction engine share one `Arc<Schema>`; keep the
// schema (and the spec types inside it) thread-safe at compile time.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Schema>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_shape() {
        let s = Schema::paper();
        assert_eq!(s.numeric.len(), 9, "8 evaluated + age");
        assert_eq!(s.terms.len(), 2);
        assert_eq!(s.categorical.len(), 6, "smoking, alcohol, shape + 3 binary");
        assert!(s.numeric_spec("pulse").is_some());
        assert!(s.numeric_spec("nonexistent").is_none());
        let binary = s
            .categorical
            .iter()
            .filter(|c| c.classes.len() == 2)
            .count();
        assert_eq!(binary, 3);
    }

    #[test]
    fn paper_numeric_names_resolve() {
        let s = Schema::paper();
        for name in Schema::paper_numeric_names() {
            assert!(s.numeric_spec(name).is_some(), "{name}");
        }
    }

    #[test]
    fn smoking_has_three_classes() {
        let s = Schema::paper();
        let smoking = s
            .categorical
            .iter()
            .find(|c| c.name == "smoking")
            .expect("paper schema defines smoking");
        assert_eq!(smoking.classes, vec!["never", "former", "current"]);
    }
}
