//! Known-lemma word sets.
//!
//! These are the validation dictionary for the lemmatizer (the role WordNet's
//! index files play for Morphy) and the open-class backbone of the POS
//! tagger's lexicon. Entries are *lemmas only*, lower-case. The lists are
//! biased toward the vocabulary of dictated clinical consultation notes.

use std::collections::HashSet;
use std::sync::OnceLock;

/// Noun lemmas.
pub const NOUNS: &[&str] = &[
    // general
    "age", "area", "aunt", "baby", "birth", "bottle", "brother", "case", "care", "cause", "chart",
    "child", "complaint", "concern", "consultation", "course", "datum", "daughter", "day", "detail",
    "doctor", "drink", "evaluation", "event", "exam", "examination", "family", "father", "follow",
    "form", "glass", "grandmother", "grandfather", "half", "head", "home", "hospital", "hour",
    "husband", "information", "issue", "item", "letter", "life", "list", "man", "management",
    "member", "menopause", "minute", "moment", "month", "morning", "mother", "name", "note",
    "number", "office", "pack", "paper", "part", "patient", "period", "person", "phone", "place",
    "plan", "point", "pound", "problem", "program", "question", "reason", "record", "remainder",
    "report", "result", "review", "risk", "room", "schedule", "school", "side", "sister", "smoker",
    "nonsmoker", "son", "status", "story", "student", "study", "surgeon", "system", "test", "thing",
    "time", "today", "type", "uncle", "unit", "value", "visit", "week", "weekend", "wife", "woman",
    "work", "year", "gravida", "para",
    // vitals & measurements
    "blood", "pressure", "pulse", "temperature", "weight", "height", "rate", "respiration",
    "saturation", "measurement", "reading", "vital", "sign",
    // anatomy
    "abdomen", "arm", "armpit", "artery", "axilla", "back", "body", "bone", "brain", "breast",
    "bronchus", "chest", "colon", "ear", "eye", "foot", "gallbladder", "hand", "heart", "hip",
    "kidney", "knee", "leg", "lesion", "liver", "lung", "lymph", "mass", "muscle", "neck", "nerve",
    "nipple", "node", "nose", "ovary", "quadrant", "rib", "shoulder", "skin", "spine", "stomach",
    "throat", "thyroid", "tissue", "tooth", "uterus", "vein", "vertebra", "wall", "cervix",
    // conditions & findings
    "allergy", "anemia", "angina", "appendicitis", "arrhythmia", "arthritis", "asthma",
    "bronchitis", "calcification", "cancer", "carcinoma", "cataract", "complication", "condition",
    "cough", "cyst", "depression", "diabetes", "diagnosis", "discharge", "disease", "disorder",
    "distress", "dizziness", "edema", "embolus", "emphysema", "failure", "fatigue", "fever",
    "fibroid", "finding", "fracture", "gallstone", "gout", "headache", "hernia", "history",
    "hypertension", "hypercholesterolemia", "hypothyroidism", "infection", "inflammation",
    "injury", "lump", "malignancy", "mammogram", "metastasis", "migraine", "murmur", "nausea",
    "obesity", "osteoporosis", "pain", "palpitation", "pneumonia", "prognosis", "rash", "reflux",
    "seizure", "stenosis", "stroke", "swelling", "symptom", "syndrome", "tenderness", "thrombosis",
    "tumor", "ulcer", "complaint", "adenopathy", "lymphadenopathy", "lesion", "abnormality",
    // procedures
    "amputation", "anesthesia", "appendectomy", "aspiration", "biopsy", "bypass", "catheter",
    "cholecystectomy", "closure", "colonoscopy", "surgery", "delivery", "dissection", "excision",
    "hysterectomy", "implant", "incision", "laminectomy", "lumpectomy", "mastectomy", "operation",
    "procedure", "reconstruction", "removal", "repair", "replacement", "resection", "section",
    "tonsillectomy", "transplant", "ultrasound", "radiation", "chemotherapy", "therapy",
    "grafting", "stapling", "dimpling", "synthroid", "calcium", "carbonate",
    "transfusion", "vasectomy", "angioplasty", "arthroscopy", "augmentation", "reduction",
    // medications & substances
    "alcohol", "aspirin", "cigarette", "dose", "drug", "insulin", "marijuana", "medication",
    "pill", "tobacco", "vitamin", "penicillin", "latex", "statin", "tablet",
    // social / gyn
    "menarche", "pregnancy", "abortion", "miscarriage", "smoking", "use", "behavior", "habit",
    "occupation", "retirement", "exercise", "diet",
];

/// Verb lemmas.
pub const VERBS: &[&str] = &[
    "admit", "advise", "agree", "appear", "apply", "ask", "be", "become", "begin", "believe",
    "breathe", "bring", "call", "care", "carry", "change", "check", "choose", "come", "complain",
    "complete", "confirm", "consider", "consult", "continue", "deny", "describe", "develop",
    "diagnose", "discontinue", "discuss", "do", "drink", "drive", "eat", "evaluate", "exercise",
    "expect", "experience", "feel", "find", "follow", "get", "give", "go", "have", "hear", "help",
    "hold", "hurt", "improve", "include", "increase", "indicate", "keep", "know", "last", "lead",
    "leave", "like", "live", "look", "lose", "make", "manage", "mean", "measure", "meet", "need",
    "note", "notice", "obtain", "occur", "order", "palpate", "perform", "persist", "plan",
    "present", "quit", "radiate", "read", "recommend", "refer", "relate", "remain", "remove",
    "report", "request", "require", "resolve", "return", "reveal", "review", "run", "say", "see",
    "seem", "send", "show", "smoke", "speak", "start", "state", "stay", "stop", "suffer",
    "suggest", "take", "tell", "think", "tolerate", "treat", "try", "undergo", "use", "visit",
    "wait", "want", "weigh", "work", "worry", "list", "schedule", "screen", "examine", "palpable",
    "biopsy", "operate", "prescribe", "resect", "excise",
];

/// Adjective lemmas.
pub const ADJECTIVES: &[&str] = &[
    "abnormal", "active", "acute", "additional", "alert", "anterior", "apparent", "asymptomatic",
    "available", "benign", "bilateral", "big", "bloody", "brief", "cardiac", "cervical", "chief",
    "chronic", "clear", "clinical", "comfortable", "common", "complete", "congestive", "consistent",
    "coronary", "current", "daily", "deep", "dense", "diabetic", "different", "difficult",
    "dominant", "early", "elderly", "essential", "familial", "far", "fine", "firm", "former",
    "free", "frequent", "full", "further", "general", "good", "great", "happy", "hard", "healthy",
    "heavy", "high", "important", "initial", "intact", "invasive", "large", "last", "late",
    "lateral", "left", "little", "live", "long", "low", "lower", "major", "malignant", "maternal",
    "medical", "mild", "minor", "moderate", "much", "multiple", "negative", "new", "next",
    "nontender", "normal", "obese", "occasional", "old", "only", "open", "other", "overweight",
    "palpable", "past", "paternal", "physical", "positive", "possible", "posterior", "postoperative",
    "pregnant", "present", "previous", "prior", "recent", "regular", "remarkable", "remote",
    "right", "routine", "severe", "short", "significant", "similar", "simple", "small", "social", "transient",
    "soft", "solid", "stable", "strong", "supraclavicular", "surgical", "symmetric", "systolic",
    "diastolic", "tender", "thin", "total", "true", "unremarkable", "upper", "usual", "visible",
    "warm", "weekly", "well", "whole", "wide", "young", "numeric", "screening", "solitary",
    "midline", "axillary", "inferior", "superior", "mammographic", "fibrocystic", "ductal",
    "lobular", "menstrual", "annual", "yearly",
];

/// Adverb lemmas.
pub const ADVERBS: &[&str] = &[
    "about", "ago", "again", "almost", "already", "also", "always", "anteriorly", "approximately",
    "bilaterally", "carefully", "clearly", "clinically", "currently", "daily", "essentially",
    "ever", "exactly", "extremely", "fairly", "frequently", "generally", "here", "home", "however",
    "immediately", "just", "largely", "lately", "likely", "mainly", "maybe", "mildly", "mostly",
    "never", "nearly", "now", "occasionally", "often", "once", "only", "originally", "otherwise",
    "periodically", "possibly", "posteriorly", "presently", "previously", "probably", "quite",
    "rarely", "really", "recently", "regularly", "significantly", "slightly", "socially",
    "sometimes", "somewhat", "soon", "still", "then", "there", "today", "together", "too",
    "twice", "typically", "usually", "very", "weekly", "well", "yet", "yesterday",
];

fn set(words: &'static [&'static str], cell: &'static OnceLock<HashSet<&'static str>>) -> &'static HashSet<&'static str> {
    cell.get_or_init(|| words.iter().copied().collect())
}

static NOUN_SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
static VERB_SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
static ADJ_SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
static ADV_SET: OnceLock<HashSet<&'static str>> = OnceLock::new();

/// True when `word` (lower-case) is a known noun lemma.
pub fn is_known_noun(word: &str) -> bool {
    set(NOUNS, &NOUN_SET).contains(word)
}

/// True when `word` (lower-case) is a known verb lemma.
pub fn is_known_verb(word: &str) -> bool {
    set(VERBS, &VERB_SET).contains(word)
}

/// True when `word` (lower-case) is a known adjective lemma.
pub fn is_known_adjective(word: &str) -> bool {
    set(ADJECTIVES, &ADJ_SET).contains(word)
}

/// True when `word` (lower-case) is a known adverb lemma.
pub fn is_known_adverb(word: &str) -> bool {
    set(ADVERBS, &ADV_SET).contains(word)
}

/// True when `word` is a known lemma of any open class.
pub fn is_known_lemma(word: &str) -> bool {
    is_known_noun(word) || is_known_verb(word) || is_known_adjective(word) || is_known_adverb(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        assert!(is_known_noun("pressure"));
        assert!(is_known_noun("cholecystectomy"));
        assert!(is_known_verb("deny"));
        assert!(is_known_adjective("postoperative"));
        assert!(is_known_adverb("currently"));
        assert!(!is_known_noun("zzz"));
    }

    #[test]
    fn lists_are_lowercase_lemmas() {
        for list in [NOUNS, VERBS, ADJECTIVES, ADVERBS] {
            for w in list {
                assert_eq!(*w, w.to_lowercase(), "{w} must be lowercase");
                assert!(!w.is_empty());
            }
        }
    }

    #[test]
    fn any_class_lookup() {
        assert!(is_known_lemma("smoke"));
        assert!(is_known_lemma("never"));
        assert!(!is_known_lemma("qqq"));
    }
}
