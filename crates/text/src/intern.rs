//! A process-wide string interner for hot-path token symbols.
//!
//! The per-sentence pipeline (tokenize → tag → parse → associate) used to
//! allocate a fresh lowercase `String` per token at every stage. Interning
//! collapses each distinct string to a [`Sym`] — a `u32` id — so stages
//! compare and hash word identities as integers and the parse caches key on
//! `u32` sequences instead of string vectors.
//!
//! Interned strings are leaked into the process (`Box::leak`), which is the
//! standard trade for `&'static str` resolution: memory grows with the
//! *vocabulary*, not the corpus. Clinical dictation vocabulary is small
//! (thousands of distinct lowercase forms even under OCR noise); a truly
//! hostile unbounded-vocabulary stream would grow the table without limit,
//! which callers accept the way they accept any vocabulary-keyed cache.
//!
//! ```
//! use cmr_text::{intern, Sym};
//!
//! let a: Sym = intern("pressure");
//! let b = intern("pressure");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "pressure");
//! assert_eq!(a, "pressure"); // Sym compares against &str for convenience
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a `u32` id that resolves back to its `&'static str`.
///
/// Equality, hashing and ordering are on the id — two `Sym`s are equal iff
/// their strings are equal (the interner canonicalizes). Ids are assigned in
/// first-intern order, so `Ord` is *not* lexicographic and must not be used
/// for user-visible ordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .strings[self.0 as usize]
    }

    /// The raw id (diagnostics; stable only within one process run).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

struct Interner {
    map: HashMap<&'static str, Sym>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::with_capacity(1024),
            strings: Vec::with_capacity(1024),
        })
    })
}

/// Interns `s`, returning its canonical [`Sym`].
///
/// Read-mostly: a string seen before costs one shared-lock hash lookup and
/// allocates nothing; only the first sighting takes the write lock and
/// leaks a copy.
pub fn intern(s: &str) -> Sym {
    let lock = interner();
    {
        let inner = lock
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
    }
    let mut inner = lock
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&sym) = inner.map.get(s) {
        return sym; // raced with another writer
    }
    let owned: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let sym = Sym(u32::try_from(inner.strings.len()).expect("interner table under 4G entries"));
    inner.strings.push(owned);
    inner.map.insert(owned, sym);
    sym
}

/// Interns the lowercase form of `s` without allocating when `s` is already
/// lowercase (the common case for mid-sentence tokens).
pub fn intern_lower(s: &str) -> Sym {
    if s.chars().any(char::is_uppercase) {
        intern(&s.to_lowercase())
    } else {
        intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("pulse");
        let b = intern("pulse");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "pulse");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        assert_ne!(intern("pulse"), intern("pressure"));
    }

    #[test]
    fn lower_interning_canonicalizes_case() {
        assert_eq!(intern_lower("Pressure"), intern("pressure"));
        assert_eq!(intern_lower("pressure"), intern("pressure"));
        assert_eq!(intern_lower("144/90"), intern("144/90"));
    }

    #[test]
    fn str_comparisons() {
        let s = intern("weight");
        assert_eq!(s, "weight");
        assert_eq!(s, *"weight");
        assert_ne!(s, "weights");
        assert_eq!(s.to_string(), "weight");
        assert_eq!(format!("{s:?}"), "Sym(\"weight\")");
    }

    #[test]
    fn empty_and_unicode() {
        assert_eq!(intern("").as_str(), "");
        assert_eq!(intern_lower("ÉCOLE"), intern("école"));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("concurrent-town")))
            .collect();
        let syms: Vec<Sym> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
