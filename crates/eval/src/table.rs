//! Aligned text tables for experiment reports (the repro binaries print
//! these in the same shape as the paper's tables).

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns and a separator rule.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal, e.g. `96.7%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["Attribute", "Precision", "Recall"]);
        t.row(vec!["Predefined PMH", "96.7%", "96.7%"]);
        t.row(vec!["Other PMH", "76.1%", "86.4%"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Attribute"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("96.7%"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.967), "96.7%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}
