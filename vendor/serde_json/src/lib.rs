//! Offline stand-in for `serde_json`: serializes the vendored
//! [`serde::Value`] tree to JSON text and parses JSON text back.
//!
//! Output conventions match real serde_json where the workspace depends on
//! them: compact form has no whitespace, pretty form indents by two spaces,
//! floats use Rust's shortest round-trip formatting, and non-finite floats
//! serialize as `null`.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value)
}

/// Parses JSON text into the raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display for f64 is the shortest round-trip decimal; append
        // ".0" for integral values to keep the number a float on re-parse.
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone leading surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                // Overflow: fall back to float like serde_json's arbitrary
                // precision off mode does for u64-range values.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&98.3f64).unwrap(), "98.3");
        assert_eq!(to_string(&98.0f64).unwrap(), "98.0");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("98.3").unwrap(), 98.3);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1i64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>(&json).unwrap(), v);
        let t: (i64, i64) = from_str("[144,90]").unwrap();
        assert_eq!(t, (144, 90));
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = vec![1i64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("[1,").is_err());
        assert!(from_str::<i64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
