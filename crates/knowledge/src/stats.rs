//! Small statistics for cohort comparisons: 2×2 chi-square and numeric
//! group summaries. Enough to "detect small variations" (§1) with an
//! honesty check on whether a variation is noise.

use crate::cohort::{Cohort, Value};

/// Pearson chi-square statistic for a 2×2 table `[[a, b], [c, d]]`.
/// Returns `None` when a marginal is zero (test undefined).
pub fn chi_square_2x2(a: usize, b: usize, c: usize, d: usize) -> Option<f64> {
    let n = (a + b + c + d) as f64;
    let r1 = (a + b) as f64;
    let r2 = (c + d) as f64;
    let c1 = (a + c) as f64;
    let c2 = (b + d) as f64;
    if r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0 {
        return None;
    }
    let num = n * ((a as f64) * (d as f64) - (b as f64) * (c as f64)).powi(2);
    Some(num / (r1 * r2 * c1 * c2))
}

/// The 95% critical value for chi-square with 1 degree of freedom.
pub const CHI2_CRIT_95: f64 = 3.841;

/// Association test between `attr_a == key_a` and `attr_b == key_b` over a
/// cohort. Returns (chi², significant at 95%).
pub fn association(
    cohort: &Cohort,
    attr_a: &str,
    key_a: &str,
    attr_b: &str,
    key_b: &str,
) -> Option<(f64, bool)> {
    let n = cohort.len();
    let mut a = 0; // A ∧ B
    let mut b = 0; // A ∧ ¬B
    let mut c = 0; // ¬A ∧ B
    let mut d = 0; // ¬A ∧ ¬B
    for i in 0..n {
        let in_a = cohort.key_of(i, attr_a) == key_a;
        let in_b = cohort.key_of(i, attr_b) == key_b;
        match (in_a, in_b) {
            (true, true) => a += 1,
            (true, false) => b += 1,
            (false, true) => c += 1,
            (false, false) => d += 1,
        }
    }
    chi_square_2x2(a, b, c, d).map(|chi2| (chi2, chi2 >= CHI2_CRIT_95))
}

/// Per-group summary of a numeric attribute: (group key, n, mean, std).
pub fn group_summary(
    cohort: &Cohort,
    group_attr: &str,
    numeric_attr: &str,
) -> Vec<(String, usize, f64, f64)> {
    let mut keys: Vec<String> = (0..cohort.len())
        .map(|i| cohort.key_of(i, group_attr))
        .filter(|k| !k.is_empty())
        .collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .filter_map(|key| {
            let values: Vec<f64> = cohort
                .matching(group_attr, &key)
                .into_iter()
                .filter_map(|i| cohort.get(i, numeric_attr).and_then(Value::as_number))
                .collect();
            if values.is_empty() {
                return None;
            }
            let n = values.len();
            let mean = values.iter().sum::<f64>() / n as f64;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
            Some((key, n, mean, var.sqrt()))
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn chi_square_known_value() {
        // Classic example: strong association.
        let chi2 = chi_square_2x2(20, 5, 5, 20).expect("defined");
        assert!(chi2 > 10.0, "{chi2}");
        // Independence: counts proportional.
        let none = chi_square_2x2(10, 10, 10, 10).expect("defined");
        assert!(none.abs() < 1e-12);
    }

    #[test]
    fn degenerate_margins() {
        assert_eq!(chi_square_2x2(0, 0, 5, 5), None);
        assert_eq!(chi_square_2x2(5, 0, 5, 0), None);
    }

    #[test]
    fn association_on_cohort() {
        let mut c = Cohort::new();
        for i in 0..40 {
            let mut row = BTreeMap::new();
            let smoker = i % 2 == 0;
            row.insert(
                "smoking".to_string(),
                Value::Text(if smoker { "current" } else { "never" }.to_string()),
            );
            if smoker && i % 4 == 0 || !smoker && i == 1 {
                row.insert("has:copd".to_string(), Value::Flag(true));
            }
            c.push_row(row);
        }
        let (chi2, sig) =
            association(&c, "smoking", "current", "has:copd", "yes").expect("defined");
        assert!(chi2 > 0.0);
        assert!(sig, "planted association should be significant: {chi2}");
    }

    #[test]
    fn group_summaries() {
        let mut c = Cohort::new();
        for (g, w) in [("a", 10.0), ("a", 20.0), ("b", 30.0)] {
            let mut row = BTreeMap::new();
            row.insert("g".to_string(), Value::Text(g.to_string()));
            row.insert("w".to_string(), Value::Number(w));
            c.push_row(row);
        }
        let s = group_summary(&c, "g", "w");
        assert_eq!(s.len(), 2);
        let a = s.iter().find(|(k, ..)| k == "a").unwrap();
        assert_eq!(a.1, 2);
        assert!((a.2 - 15.0).abs() < 1e-12);
        assert!((a.3 - 5.0).abs() < 1e-12);
    }
}
