//! Medical term extraction (§3.2).
//!
//! POS-tag the text, scan with the paper's four ordered patterns
//! (`JJ NN NN`, `NN NN`, `JJ NN`, `NN`), normalize each candidate
//! (lemmatize + alphabetize) and look it up in the ontology. On a hit,
//! save the term and continue after its endpoint; otherwise try the next
//! pattern from the same starting point.

use cmr_ontology::{normalize, Concept, Ontology, ValueSet};
use cmr_postag::{PosTagger, Tag, TaggedToken};
use cmr_text::{tokenize, Span};

/// Which ordered pattern inventory the scanner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatternSet {
    /// Exactly the paper's four patterns (§3.2): `JJ NN NN`, `NN NN`,
    /// `JJ NN`, `NN`. Terms longer than three words are unreachable — a
    /// real limitation of the published method ("chronic obstructive
    /// pulmonary disease" cannot match).
    #[default]
    Paper,
    /// The paper's patterns plus longer prefixed forms (up to four words,
    /// multiple adjectives), ordered longest-first.
    Extended,
}

/// The paper's ordered candidate patterns. `Adj` = adjective slot,
/// `Noun` = noun slot.
const PAPER_PATTERNS: &[&[Slot]] = &[
    &[Slot::Adj, Slot::Noun, Slot::Noun],
    &[Slot::Noun, Slot::Noun],
    &[Slot::Adj, Slot::Noun],
    &[Slot::Noun],
];

/// Extended inventory: adds four-word and double-adjective shapes.
const EXTENDED_PATTERNS: &[&[Slot]] = &[
    &[Slot::Adj, Slot::Adj, Slot::Adj, Slot::Noun],
    &[Slot::Adj, Slot::Adj, Slot::Noun, Slot::Noun],
    &[Slot::Adj, Slot::Noun, Slot::Noun, Slot::Noun],
    &[Slot::Noun, Slot::Noun, Slot::Noun],
    &[Slot::Adj, Slot::Adj, Slot::Noun],
    &[Slot::Adj, Slot::Noun, Slot::Noun],
    &[Slot::Noun, Slot::Noun],
    &[Slot::Adj, Slot::Noun],
    &[Slot::Noun],
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Adj,
    Noun,
}

fn slot_matches(slot: Slot, tag: Tag) -> bool {
    match slot {
        // Participial modifiers ("postoperative CVA" tags cleanly, but
        // "screening mammogram" may tag VBG) count as adjective slots.
        Slot::Adj => tag.is_adjective() || tag == Tag::VBG || tag == Tag::VBN,
        Slot::Noun => tag.is_noun(),
    }
}

/// One extracted medical term.
#[derive(Debug, Clone, PartialEq)]
pub struct TermHit {
    /// The resolved concept.
    pub concept: &'static Concept,
    /// The surface text as written.
    pub surface: String,
    /// Byte span of the surface in the scanned text.
    pub span: Span,
}

/// The medical term extractor.
///
/// The ontology is behind an [`Arc`](std::sync::Arc): extractors on
/// different worker threads share one concept table instead of cloning it.
pub struct MedicalTermExtractor {
    ontology: std::sync::Arc<Ontology>,
    tagger: PosTagger,
    patterns: PatternSet,
    negation_filter: bool,
}

impl MedicalTermExtractor {
    /// Creates an extractor over the given ontology (owned, or an `Arc`
    /// shared with other extractors) with the paper's pattern set.
    pub fn new(ontology: impl Into<std::sync::Arc<Ontology>>) -> MedicalTermExtractor {
        MedicalTermExtractor {
            ontology: ontology.into(),
            tagger: PosTagger::new(),
            patterns: PatternSet::Paper,
            negation_filter: false,
        }
    }

    /// Enables the NegEx-style negation filter (extension; see
    /// [`crate::NegationDetector`]): hits inside a negation scope
    /// ("negative for breast cancer") are dropped. Off by default — the
    /// paper's system has no negation handling.
    pub fn with_negation_filter(mut self, on: bool) -> MedicalTermExtractor {
        self.negation_filter = on;
        self
    }

    /// Selects the pattern inventory.
    pub fn with_patterns(mut self, patterns: PatternSet) -> MedicalTermExtractor {
        self.set_patterns(patterns);
        self
    }

    /// Selects the pattern inventory in place.
    pub fn set_patterns(&mut self, patterns: PatternSet) {
        self.patterns = patterns;
    }

    fn pattern_table(&self) -> &'static [&'static [Slot]] {
        match self.patterns {
            PatternSet::Paper => PAPER_PATTERNS,
            PatternSet::Extended => EXTENDED_PATTERNS,
        }
    }

    /// The ontology in use.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Extracts all medical terms from `text` (typically a section body).
    /// Duplicate concepts are reported once (first occurrence).
    pub fn extract(&self, text: &str) -> Vec<TermHit> {
        let tokens = tokenize(text);
        let tagged = self.tagger.tag(&tokens);
        let negated: Vec<Span> = if self.negation_filter {
            crate::negation::NegationDetector::new()
                .negated_ranges(&tagged)
                .into_iter()
                .map(|(s, e)| tagged[s].token.span.cover(&tagged[e - 1].token.span))
                .collect()
        } else {
            Vec::new()
        };
        let mut hits: Vec<TermHit> = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            match self.match_at(&tagged, i, text) {
                Some((hit, consumed)) => {
                    let negated_hit = negated.iter().any(|n| n.overlaps(&hit.span));
                    if !negated_hit && !hits.iter().any(|h| h.concept.cui == hit.concept.cui) {
                        hits.push(hit);
                    }
                    i += consumed;
                }
                None => i += 1,
            }
        }
        hits
    }

    /// Tries the ordered patterns at position `i`; returns the hit and the
    /// number of tokens consumed.
    fn match_at(&self, tagged: &[TaggedToken], i: usize, text: &str) -> Option<(TermHit, usize)> {
        for pattern in self.pattern_table() {
            let len = pattern.len();
            if i + len > tagged.len() {
                continue;
            }
            let window = &tagged[i..i + len];
            if !window
                .iter()
                .zip(pattern.iter())
                .all(|(t, s)| t.token.kind.is_word() && slot_matches(*s, t.tag))
            {
                continue;
            }
            let surface_span = window[0].token.span.cover(&window[len - 1].token.span);
            let surface = surface_span.slice(text).to_string();
            let norm = normalize(&surface);
            if let Some(concept) = self.ontology.lookup_normalized(&norm) {
                return Some((
                    TermHit {
                        concept,
                        surface,
                        span: surface_span,
                    },
                    len,
                ));
            }
        }
        None
    }

    /// Extracts and partitions terms into (predefined, other) by a value
    /// set — the paper's four attributes are exactly these partitions for
    /// the medical- and surgical-history sections.
    pub fn extract_partitioned(
        &self,
        text: &str,
        predefined: &ValueSet,
    ) -> (Vec<TermHit>, Vec<TermHit>) {
        self.extract(text)
            .into_iter()
            .partition(|h| predefined.contains(h.concept))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extractor() -> MedicalTermExtractor {
        MedicalTermExtractor::new(Ontology::full())
    }

    fn preferred(hits: &[TermHit]) -> Vec<&str> {
        hits.iter().map(|h| h.concept.preferred).collect()
    }

    #[test]
    fn paper_example_three_terms() {
        // §3.2: "Significant for a postoperative CVA after undergoing a
        // cholecystectomy and a midline hernia closure" → postoperative CVA,
        // cholecystectomy, midline hernia (closure).
        let hits = extractor().extract(
            "Significant for a postoperative CVA after undergoing a cholecystectomy and a midline hernia closure",
        );
        let names = preferred(&hits);
        assert!(names.contains(&"cerebrovascular accident"), "{names:?}");
        assert!(names.contains(&"cholecystectomy"), "{names:?}");
        assert!(names.contains(&"hernia repair"), "{names:?}");
    }

    #[test]
    fn appendix_pmh_line() {
        let hits = extractor().extract(
            "Significant for diabetes, heart disease, high blood pressure, hypercholesterolemia, bronchitis, arrhythmia, and depression.",
        );
        let names = preferred(&hits);
        for expect in [
            "diabetes",
            "heart disease",
            "hypertension",
            "hypercholesterolemia",
            "bronchitis",
            "arrhythmia",
            "depression",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
    }

    #[test]
    fn multiword_synonym_resolves_via_normalization() {
        let hits = extractor().extract("Her high blood pressures are controlled.");
        assert_eq!(preferred(&hits), vec!["hypertension"]);
    }

    #[test]
    fn longest_pattern_preferred() {
        // "midline hernia closure" (JJ NN NN) must win over "hernia" (NN).
        let hits = extractor().extract("a midline hernia closure");
        assert_eq!(preferred(&hits), vec!["hernia repair"]);
    }

    #[test]
    fn continue_after_endpoint() {
        let hits = extractor().extract("cholecystectomy and appendectomy");
        assert_eq!(preferred(&hits), vec!["cholecystectomy", "appendectomy"]);
    }

    #[test]
    fn no_terms_in_plain_prose() {
        let hits = extractor().extract("She was referred for further management.");
        assert!(hits.is_empty(), "{:?}", preferred(&hits));
    }

    #[test]
    fn duplicates_reported_once() {
        let hits = extractor().extract("diabetes and diabetes and diabetes");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn spans_point_into_text() {
        let text = "Significant for diabetes and arthritis.";
        for h in extractor().extract(text) {
            assert_eq!(h.span.slice(text), h.surface);
        }
    }

    #[test]
    fn partition_by_value_set() {
        let (pre, other) = extractor().extract_partitioned(
            "Significant for diabetes and gout.",
            &ValueSet::predefined_medical_history(),
        );
        assert_eq!(preferred(&pre), vec!["diabetes"]);
        assert_eq!(preferred(&other), vec!["gout"]);
    }

    #[test]
    fn degraded_ontology_misses_synonyms() {
        let ex = MedicalTermExtractor::new(Ontology::degraded());
        let hits = ex.extract("high blood pressure");
        assert!(hits.is_empty(), "degraded profile has no synonyms");
    }

    #[test]
    fn paper_patterns_cannot_reach_four_word_terms() {
        // A documented limitation of the published pattern set.
        let hits = extractor().extract("chronic obstructive pulmonary disease");
        assert!(
            !preferred(&hits).contains(&"chronic obstructive pulmonary disease"),
            "{:?}",
            preferred(&hits)
        );
    }

    #[test]
    fn extended_patterns_reach_four_word_terms() {
        let ex = MedicalTermExtractor::new(Ontology::full()).with_patterns(PatternSet::Extended);
        let hits =
            ex.extract("Significant for chronic obstructive pulmonary disease and arthritis.");
        let names = preferred(&hits);
        assert!(
            names.contains(&"chronic obstructive pulmonary disease"),
            "{names:?}"
        );
        assert!(names.contains(&"arthritis"), "{names:?}");
    }

    #[test]
    fn negation_filter_drops_ruled_out_terms() {
        let ex = MedicalTermExtractor::new(Ontology::full()).with_negation_filter(true);
        assert!(ex.extract("Negative for breast cancer.").is_empty());
        assert!(ex
            .extract("She denies chest pain and headaches.")
            .is_empty());
        let hits = ex.extract("Significant for diabetes; negative for gout.");
        assert_eq!(preferred(&hits), vec!["diabetes"]);
    }

    #[test]
    fn negation_filter_off_by_default() {
        let ex = extractor();
        let hits = ex.extract("Negative for breast cancer.");
        assert_eq!(
            preferred(&hits),
            vec!["breast cancer"],
            "paper behaviour: negation ignored"
        );
    }

    #[test]
    fn extended_patterns_preserve_three_word_behaviour() {
        let ex = MedicalTermExtractor::new(Ontology::full()).with_patterns(PatternSet::Extended);
        let hits = ex.extract("a midline hernia closure and high blood pressure");
        let names = preferred(&hits);
        assert!(names.contains(&"hernia repair"), "{names:?}");
        assert!(names.contains(&"hypertension"), "{names:?}");
    }
}
