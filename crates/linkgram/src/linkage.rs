//! Linkages: the parser's output, viewed as a weighted graph.
//!
//! §3.1 of the paper: "Suppose a node represents a word, and an edge
//! represents a link. Then the linkage diagram of a valid sentence can be
//! looked at as a connected graph. Furthermore, each edge can be weighted
//! against the type of link according to the application. Thus, the shortest
//! distance between any word pair can be calculated from the graph."

use std::collections::HashMap;
use std::sync::Arc;

/// One link between two words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Index of the left word (0 is the LEFT-WALL).
    pub left: usize,
    /// Index of the right word.
    pub right: usize,
    /// Link label, e.g. `Ss`, `O`, `AN`.
    pub label: String,
}

impl Link {
    /// The uppercase base of the label (`Ss` → `S`).
    pub fn base(&self) -> &str {
        let end = self
            .label
            .find(|c: char| !c.is_ascii_uppercase())
            .unwrap_or(self.label.len());
        &self.label[..end]
    }
}

/// Per-link-type edge weights for the shortest-distance computation.
///
/// The defaults encode the application-tuning the paper alludes to: links
/// that carry the grammatical core of a measurement phrase (verb-object,
/// preposition-object, number-modifier) are cheap; coordination and wall
/// links are expensive, so distance does not leak across conjuncts.
#[derive(Debug, Clone)]
pub struct LinkWeights {
    weights: HashMap<String, f64>,
    default: f64,
}

impl Default for LinkWeights {
    fn default() -> Self {
        let mut weights = HashMap::new();
        for (base, w) in [
            ("O", 0.7), // verb → object
            ("P", 0.7), // be → predicate
            ("Pv", 0.7),
            ("J", 0.6),  // preposition → object
            ("M", 0.8),  // noun → modifier
            ("NM", 0.4), // noun → trailing number ("age 10")
            ("D", 0.5),  // determiner ("154 pounds")
            ("S", 1.0),  // subject → verb
            ("AN", 0.8), // compound
            ("A", 0.9),
            ("MV", 1.2),
            ("JT", 0.8),
            ("T", 1.0),
            ("I", 1.0),
            ("E", 1.2),
            ("EB", 1.2),
            ("EA", 1.2),
            ("R", 1.5),
            ("MX", 2.5), // coordination: keep conjuncts apart
            ("W", 4.0),  // wall links: never a semantic path
            ("Wd", 4.0),
            ("Wn", 4.0),
        ] {
            weights.insert(base.to_string(), w);
        }
        LinkWeights {
            weights,
            default: 1.0,
        }
    }
}

impl LinkWeights {
    /// Uniform weights: every link costs 1 (the unweighted-graph baseline).
    pub fn uniform() -> LinkWeights {
        LinkWeights {
            weights: HashMap::new(),
            default: 1.0,
        }
    }

    /// Sets the weight for a link base, returning `self` for chaining.
    pub fn with(mut self, base: &str, weight: f64) -> LinkWeights {
        self.weights.insert(base.to_string(), weight);
        self
    }

    /// Weight of a link label: exact label first, then its base, then the
    /// default.
    pub fn weight(&self, label: &str) -> f64 {
        if let Some(w) = self.weights.get(label) {
            return *w;
        }
        let base: String = label
            .chars()
            .take_while(|c| c.is_ascii_uppercase())
            .collect();
        self.weights.get(&base).copied().unwrap_or(self.default)
    }
}

/// A complete linkage of a sentence.
#[derive(Debug, Clone)]
pub struct Linkage {
    /// Words, index 0 being the LEFT-WALL.
    pub words: Vec<String>,
    /// Mapping from linkage word index to source token index (`None` for
    /// the wall).
    pub token_map: Vec<Option<usize>>,
    /// The links, sorted by (left, right). Shared (`Arc`) so that cache
    /// hits rebuild a linkage without deep-copying the link vector.
    pub links: Arc<Vec<Link>>,
    /// Total parse cost (lower is a better parse).
    pub cost: f64,
}

impl Linkage {
    /// Number of words including the wall.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the linkage has no words (never produced by the parser).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The linkage word index for a source token index, if that token
    /// participated in the parse.
    pub fn word_of_token(&self, token_idx: usize) -> Option<usize> {
        self.token_map.iter().position(|m| *m == Some(token_idx))
    }

    /// Single-source weighted shortest distances (Dijkstra) from `word` to
    /// every word; `f64::INFINITY` marks unreachable nodes (cannot occur on
    /// parser output, which is connected).
    pub fn distances_from(&self, word: usize, weights: &LinkWeights) -> Vec<f64> {
        let n = self.words.len();
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for l in self.links.iter() {
            let w = weights.weight(&l.label);
            adj[l.left].push((l.right, w));
            adj[l.right].push((l.left, w));
        }
        let mut dist = vec![f64::INFINITY; n];
        dist[word] = 0.0;
        // Binary heap over ordered floats; n is tiny, so a simple O(n²)
        // scan-based Dijkstra is clearer and plenty fast.
        let mut done = vec![false; n];
        for _ in 0..n {
            let mut u = None;
            let mut best = f64::INFINITY;
            for (i, (&d, &fin)) in dist.iter().zip(done.iter()).enumerate() {
                if !fin && d < best {
                    best = d;
                    u = Some(i);
                }
            }
            let Some(u) = u else { break };
            done[u] = true;
            for &(v, w) in &adj[u] {
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                }
            }
        }
        dist
    }

    /// Weighted shortest distance between two words.
    pub fn distance(&self, a: usize, b: usize, weights: &LinkWeights) -> f64 {
        self.distances_from(a, weights)[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Linkage {
        // LEFT-WALL  blood  pressure  is  144/90
        //   wall-Wd->pressure, blood-AN-pressure, pressure-Ss-is, is-O-144/90
        Linkage {
            words: vec![
                "LEFT-WALL".into(),
                "Blood".into(),
                "pressure".into(),
                "is".into(),
                "144/90".into(),
            ],
            token_map: vec![None, Some(0), Some(1), Some(2), Some(3)],
            links: Arc::new(vec![
                Link {
                    left: 0,
                    right: 2,
                    label: "Wd".into(),
                },
                Link {
                    left: 1,
                    right: 2,
                    label: "AN".into(),
                },
                Link {
                    left: 2,
                    right: 3,
                    label: "Ss".into(),
                },
                Link {
                    left: 3,
                    right: 4,
                    label: "O".into(),
                },
            ]),
            cost: 0.0,
        }
    }

    #[test]
    fn link_base() {
        assert_eq!(
            Link {
                left: 0,
                right: 1,
                label: "Ss".into()
            }
            .base(),
            "S"
        );
        assert_eq!(
            Link {
                left: 0,
                right: 1,
                label: "MX".into()
            }
            .base(),
            "MX"
        );
    }

    #[test]
    fn weights_fall_back_to_base_then_default() {
        let w = LinkWeights::default();
        assert_eq!(w.weight("Ss"), 1.0, "base S");
        assert_eq!(w.weight("O"), 0.7);
        assert_eq!(w.weight("ZZZ"), 1.0, "default");
        let w = w.with("Ss", 0.1);
        assert_eq!(w.weight("Ss"), 0.1, "exact beats base");
    }

    #[test]
    fn distances() {
        let l = sample();
        let w = LinkWeights::uniform();
        assert_eq!(l.distance(2, 4, &w), 2.0, "pressure → is → 144/90");
        assert_eq!(l.distance(1, 4, &w), 3.0);
        assert_eq!(l.distance(2, 2, &w), 0.0);
    }

    #[test]
    fn weighted_distances_differ() {
        let l = sample();
        let w = LinkWeights::default();
        // pressure → is (Ss = 1.0) → 144/90 (O = 0.7)
        assert!((l.distance(2, 4, &w) - 1.7).abs() < 1e-9);
    }

    #[test]
    fn word_of_token_roundtrip() {
        let l = sample();
        assert_eq!(l.word_of_token(0), Some(1));
        assert_eq!(l.word_of_token(3), Some(4));
        assert_eq!(l.word_of_token(9), None);
    }
}
