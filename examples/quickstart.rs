//! Quickstart: generate a synthetic consultation note, run the full
//! extraction pipeline, print the structured result as JSON.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cmr::prelude::*;

fn main() {
    // A small corpus in the paper's Appendix format, deterministic by seed.
    let corpus = CorpusBuilder::new().records(1).seed(7).build();
    let record = &corpus.records[0];

    println!("=== input record =====================================================");
    println!("{}", record.text);

    // The pipeline bundles tokenization, sentence/section splitting, POS
    // tagging, the link grammar parser, the morphology engine and the
    // medical ontology (Figure 2 of the paper).
    let pipeline = Pipeline::with_default_schema();
    let extracted = pipeline.extract(&record.text);

    println!("=== extracted structured record ======================================");
    println!(
        "{}",
        serde_json::to_string_pretty(&extracted).expect("extracted records serialize")
    );

    // Ground truth is attached to every generated record.
    println!("=== gold check =======================================================");
    println!(
        "pulse:  extracted {:?}  gold {}",
        extracted.numeric("pulse").map(|v| v.to_string()),
        record.pulse
    );
    println!(
        "blood pressure: extracted {:?}  gold {}/{}",
        extracted.numeric("blood_pressure").map(|v| v.to_string()),
        record.blood_pressure.0,
        record.blood_pressure.1
    );
    println!(
        "past medical history: extracted {:?}",
        extracted
            .predefined_medical
            .iter()
            .chain(&extracted.other_medical)
            .collect::<Vec<_>>()
    );
    println!("gold medical history: {:?}", record.medical_history);
}
