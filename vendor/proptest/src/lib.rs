//! Offline stand-in for `proptest` 1.x.
//!
//! Provides the subset this workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), `prop_assert!`-family macros that
//! return [`test_runner::TestCaseError`] instead of panicking (so helper
//! functions can use `?`), and strategies for regex-like string literals
//! (`[class]{m,n}` form), integer ranges, tuples, `sample::select`,
//! `collection::vec`, `bool::ANY`, and `.prop_map`.
//!
//! Unlike real proptest there is no shrinking and no persistence of failing
//! seeds (`.proptest-regressions` files are ignored); generation is
//! deterministic per test function, so failures reproduce exactly.

pub mod test_runner {
    /// Why a test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
        /// The input was rejected (kept for API parity; unused here).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected-input error.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases, everything else default.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator driving all strategies (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor; the `proptest!` macro seeds from the test name.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform index in `0..n`. Panics when `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform value in `lo..=hi`.
        pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi - lo + 1;
            if span == 0 {
                // Full u64 domain.
                self.next_u64()
            } else {
                lo + self.next_u64() % span
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values for property tests.
    ///
    /// The real crate separates strategies from value trees to support
    /// shrinking; this stand-in samples directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// String literals act as regex-subset strategies: a sequence of
    /// character classes (`[a-z]`, ranges and `\n`-style escapes supported)
    /// or literal characters, each with an optional `{m}` / `{m,n}` count.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\0',
            other => other,
        }
    }

    /// Parses one class element (handles `\x` escapes), returning the char.
    fn class_element(chars: &[char], i: &mut usize) -> char {
        let c = chars[*i];
        *i += 1;
        if c == '\\' && *i < chars.len() {
            let e = unescape(chars[*i]);
            *i += 1;
            e
        } else {
            c
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            // One atom: a character class or a single (possibly escaped) char.
            let pool: Vec<char> = if chars[i] == '[' {
                i += 1;
                let mut pool = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let start = class_element(&chars, &mut i);
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1; // consume '-'
                        let end = class_element(&chars, &mut i);
                        let (lo, hi) = (start as u32, end as u32);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        for cp in lo..=hi {
                            if let Some(c) = char::from_u32(cp) {
                                pool.push(c);
                            }
                        }
                    } else {
                        pool.push(start);
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // consume ']'
                pool
            } else {
                let mut j = i;
                let c = class_element(&chars, &mut j);
                i = j;
                vec![c]
            };
            assert!(!pool.is_empty(), "empty character class in {pattern:?}");

            // Optional repetition `{m}` or `{m,n}`.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let mut lo = 0usize;
                while chars[i].is_ascii_digit() {
                    lo = lo * 10 + chars[i] as usize - '0' as usize;
                    i += 1;
                }
                let hi = if chars[i] == ',' {
                    i += 1;
                    let mut hi = 0usize;
                    while chars[i].is_ascii_digit() {
                        hi = hi * 10 + chars[i] as usize - '0' as usize;
                        i += 1;
                    }
                    hi
                } else {
                    lo
                };
                assert!(chars[i] == '}', "bad repetition in {pattern:?}");
                i += 1;
                (lo, hi)
            } else {
                (1, 1)
            };

            let n = rng.range_inclusive(lo as u64, hi as u64) as usize;
            for _ in 0..n {
                out.push(pool[rng.below(pool.len())]);
            }
        }
        out
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy over a fixed pool of values; see [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniformly selects one of `items` (a `Vec`, array, or slice of
    /// cloneable values). Panics at sample time if empty.
    pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
        Select {
            items: items.into(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select over empty pool");
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Admissible lengths for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from `element`; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range_inclusive(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// FNV-1a over the test name: a stable per-test seed so each test draws a
/// distinct but reproducible stream.
#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fails the current case unless `cond` holds. Returns
/// `Err(TestCaseError)` rather than panicking, so helpers declared as
/// `fn(..) -> Result<(), TestCaseError>` compose with `?`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion in the style of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion in the style of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times and
/// runs the body; `prop_assert!` failures abort the case with a panic that
/// includes the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::new($crate::__seed_from_name(stringify!($name)));
            for __case in 0..__config.cases {
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, __e);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: i64) -> Result<(), TestCaseError> {
        prop_assert!(x >= 0, "negative {x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn regex_strings_match_class(s in "[a-z]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn ranges_and_helpers(v in 0i64..100, w in 5usize..=9) {
            helper(v)?;
            prop_assert!((0..100).contains(&v));
            prop_assert!((5..=9).contains(&w));
        }

        #[test]
        fn tuples_select_vec_map(
            xs in prop::collection::vec((0usize..3, prop::bool::ANY), 1..6),
            s in prop::sample::select(vec!["a", "b"]).prop_map(|x| x.to_string()),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            for (i, _) in &xs {
                prop_assert!(*i < 3);
            }
            prop_assert_ne!(s.as_str(), "c");
            prop_assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn printable_class_with_escape() {
        let mut rng = crate::test_runner::TestRng::new(42);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::sample(&"[ -~\n]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }
}
