//! # cmr-ontology — embedded medical vocabulary (UMLS substitute)
//!
//! The original system queried UMLS (installed in DB2) by normalized string
//! to decide whether a candidate phrase is a medical term. UMLS is licensed
//! and cannot be redistributed, so this crate embeds a purpose-built
//! vocabulary for the breast-cancer consultation domain with the same lookup
//! discipline: normalize (lemmatize + alphabetize), then exact-match.
//!
//! Completeness *profiles* reproduce the paper's observed failure modes —
//! see [`OntologyProfile`].
//!
//! ```
//! use cmr_ontology::{Ontology, normalize};
//!
//! let onto = Ontology::full();
//! assert_eq!(normalize("high blood pressures"), "blood high pressure");
//! assert_eq!(onto.lookup("high blood pressures").unwrap().preferred, "hypertension");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod concept;
mod data;
mod normalize;
mod ontology;

pub use concept::{Concept, Rarity, SemanticType};
pub use data::{CONCEPTS, PREDEFINED_MEDICAL_CUIS, PREDEFINED_SURGICAL_CUIS};
pub use normalize::normalize;
pub use ontology::{Ontology, OntologyProfile, ValueSet};
