//! The dictionary expression language and its compilation to disjuncts.
//!
//! Grammar (same surface syntax as the original link grammar dictionaries):
//!
//! ```text
//! expr   ::= term ( '&' term )* | term ( 'or' term )*
//! term   ::= connector | '(' expr ')' | '{' expr '}' | '[' expr ']'
//! ```
//!
//! `{e}` marks `e` optional, `[e]` adds a cost of 1 to every disjunct using
//! `e`. `&` is ordered conjunction: connectors listed earlier attach *closer*
//! to the word. An expression compiles to a set of [`Disjunct`]s by
//! distributing `or` over `&`.

use crate::connector::{Connector, Dir};
use std::fmt;

/// A parsed dictionary expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A single connector.
    Conn(Connector),
    /// Ordered conjunction: all parts required, in order.
    And(Vec<Expr>),
    /// Alternation: exactly one part.
    Or(Vec<Expr>),
    /// Optional sub-expression (`{e}`).
    Opt(Box<Expr>),
    /// Cost bracket (`[e]`): using `e` costs 1.
    Cost(Box<Expr>),
    /// The empty expression (no connectors required).
    Empty,
}

/// One alternative a word may use in a parse: ordered left and right
/// connector lists (nearest word first) and a cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Disjunct {
    /// Left-pointing connectors, closest attachment first.
    pub left: Vec<Connector>,
    /// Right-pointing connectors, closest attachment first.
    pub right: Vec<Connector>,
    /// Cost of choosing this disjunct (sum of `[]` brackets).
    pub cost: f64,
}

impl Disjunct {
    /// The disjunct with no connectors.
    pub fn empty() -> Disjunct {
        Disjunct {
            left: Vec::new(),
            right: Vec::new(),
            cost: 0.0,
        }
    }
}

impl fmt::Display for Disjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .left
            .iter()
            .chain(self.right.iter())
            .map(|c| c.to_string())
            .collect();
        write!(f, "({})", parts.join(" "))
    }
}

/// Error from expression parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an expression from dictionary text.
pub fn parse_expr(text: &str) -> Result<Expr, ParseError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("trailing input at token {}", p.pos),
        });
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Conn(Connector),
    And,
    Or,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
}

fn lex(text: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let mut it = text.split_whitespace().flat_map(split_punct);
    it.try_for_each(|piece| {
        let tok = match piece.as_str() {
            "&" => Tok::And,
            "or" => Tok::Or,
            "(" => Tok::LParen,
            ")" => Tok::RParen,
            "{" => Tok::LBrace,
            "}" => Tok::RBrace,
            "[" => Tok::LBracket,
            "]" => Tok::RBracket,
            other => Tok::Conn(Connector::parse(other).ok_or_else(|| ParseError {
                message: format!("bad connector `{other}`"),
            })?),
        };
        out.push(tok);
        Ok(())
    })?;
    Ok(out)
}

/// Splits brackets/parens off words so `{O+}` lexes as `{`, `O+`, `}`.
fn split_punct(word: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in word.chars() {
        match ch {
            '(' | ')' | '{' | '}' | '[' | ']' | '&' => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                out.push(ch.to_string());
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.term()?;
        match self.peek() {
            Some(Tok::And) => {
                let mut parts = vec![first];
                while self.peek() == Some(&Tok::And) {
                    self.pos += 1;
                    parts.push(self.term()?);
                }
                Ok(Expr::And(parts))
            }
            Some(Tok::Or) => {
                let mut parts = vec![first];
                while self.peek() == Some(&Tok::Or) {
                    self.pos += 1;
                    parts.push(self.term()?);
                }
                Ok(Expr::Or(parts))
            }
            _ => Ok(first),
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Conn(c)) => {
                self.pos += 1;
                Ok(Expr::Conn(c))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LBrace) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RBrace)?;
                Ok(Expr::Opt(Box::new(e)))
            }
            Some(Tok::LBracket) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RBracket)?;
                Ok(Expr::Cost(Box::new(e)))
            }
            other => Err(ParseError {
                message: format!("unexpected token {other:?}"),
            }),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {tok:?}, found {:?}", self.peek()),
            })
        }
    }
}

/// A partially-built disjunct during expansion: an ordered connector
/// sequence (mixed directions) and a cost.
#[derive(Debug, Clone)]
struct Partial {
    seq: Vec<Connector>,
    cost: f64,
}

/// Compiles an expression into its disjuncts.
///
/// Ordered conjunction concatenates connector sequences; alternation unions
/// alternatives; options fork with/without; cost brackets add 1. The mixed
/// sequence is then split by direction, *preserving order within each side*
/// (closest-first for both, matching the dictionary convention used here).
///
/// `cap` bounds the number of alternatives to protect against exponential
/// dictionaries; exceeding it is a dictionary bug and panics.
pub fn expand(expr: &Expr, cap: usize) -> Vec<Disjunct> {
    let partials = walk(expr, cap);
    partials
        .into_iter()
        .map(|p| {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for c in p.seq {
                match c.dir {
                    Dir::Left => left.push(c),
                    Dir::Right => right.push(c),
                }
            }
            Disjunct {
                left,
                right,
                cost: p.cost,
            }
        })
        .collect()
}

fn walk(expr: &Expr, cap: usize) -> Vec<Partial> {
    let out = match expr {
        Expr::Empty => vec![Partial {
            seq: Vec::new(),
            cost: 0.0,
        }],
        Expr::Conn(c) => vec![Partial {
            seq: vec![c.clone()],
            cost: 0.0,
        }],
        Expr::And(parts) => {
            let mut acc = vec![Partial {
                seq: Vec::new(),
                cost: 0.0,
            }];
            for part in parts {
                let alts = walk(part, cap);
                let mut next = Vec::with_capacity(acc.len() * alts.len());
                for a in &acc {
                    for b in &alts {
                        let mut seq = a.seq.clone();
                        seq.extend(b.seq.iter().cloned());
                        next.push(Partial {
                            seq,
                            cost: a.cost + b.cost,
                        });
                    }
                }
                assert!(next.len() <= cap, "disjunct expansion exceeded cap {cap}");
                acc = next;
            }
            acc
        }
        Expr::Or(parts) => {
            let mut acc = Vec::new();
            for part in parts {
                acc.extend(walk(part, cap));
            }
            assert!(acc.len() <= cap, "disjunct expansion exceeded cap {cap}");
            acc
        }
        Expr::Opt(inner) => {
            let mut acc = vec![Partial {
                seq: Vec::new(),
                cost: 0.0,
            }];
            acc.extend(walk(inner, cap));
            acc
        }
        Expr::Cost(inner) => {
            let mut acc = walk(inner, cap);
            for p in &mut acc {
                p.cost += 1.0;
            }
            acc
        }
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disjuncts(s: &str) -> Vec<Disjunct> {
        expand(&parse_expr(s).expect("parse"), 100_000)
    }

    #[test]
    fn single_connector() {
        let d = disjuncts("O+");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].right.len(), 1);
        assert!(d[0].left.is_empty());
    }

    #[test]
    fn conjunction_orders_sides() {
        let d = disjuncts("S- & O+ & MV+");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].left.len(), 1);
        assert_eq!(
            d[0].right
                .iter()
                .map(|c| c.base.as_str())
                .collect::<Vec<_>>(),
            ["O", "MV"]
        );
    }

    #[test]
    fn alternation() {
        let d = disjuncts("O+ or J- or S+");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn option_doubles() {
        let d = disjuncts("{D-} & S+");
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.left.is_empty()));
        assert!(d.iter().any(|x| x.left.len() == 1));
    }

    #[test]
    fn cost_brackets() {
        let d = disjuncts("[O+] or S+");
        let costs: Vec<f64> = d.iter().map(|x| x.cost).collect();
        assert!(costs.contains(&1.0));
        assert!(costs.contains(&0.0));
    }

    #[test]
    fn nested_groups() {
        let d = disjuncts("(S- or O-) & {@MV+}");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn no_whitespace_needed_around_braces() {
        let d = disjuncts("{@A-}&{D-}&S+");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_expr("O+ &").is_err());
        assert!(parse_expr("{O+").is_err());
        assert!(parse_expr("lower+").is_err());
        assert!(parse_expr("O+ S+").is_err());
    }

    #[test]
    fn realistic_noun_expression() {
        let d = disjuncts("{@AN-} & {@A-} & {D-} & (S+ or O- or J-)");
        // 2 * 2 * 2 * 3
        assert_eq!(d.len(), 24);
    }
}
