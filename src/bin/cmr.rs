//! `cmr` — command-line interface to the extraction system.
//!
//! ```text
//! cmr generate --records 50 --seed 7 --out notes/     # write synthetic notes
//! cmr extract notes/patient_001.txt …                 # notes → JSON lines
//! cmr parse "She quit smoking five years ago."        # linkage diagram
//! cmr terms "Significant for diabetes and a midline hernia closure."
//! ```

use cmr::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => generate(rest),
        "extract" => extract(rest),
        "parse" => parse(rest),
        "terms" => terms(rest),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cmr: {e}");
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "cmr — clinical medical record information extraction (Zhou et al., ICDE 2005)\n\
         \n\
         USAGE:\n\
         \u{20}  cmr generate [--records N] [--seed S] [--style V] [--out DIR]\n\
         \u{20}      write synthetic consultation notes (and gold labels as JSON)\n\
         \u{20}  cmr extract FILE...\n\
         \u{20}      extract structured records from note files, one JSON object per line\n\
         \u{20}  cmr parse \"SENTENCE\"\n\
         \u{20}      print the link grammar linkage diagram and constituents\n\
         \u{20}  cmr terms \"TEXT\"\n\
         \u{20}      print the medical terms found in TEXT"
    );
}

/// Parses `--flag value` pairs; returns positionals.
fn parse_flags(args: &[String], flags: &mut [(&str, &mut String)]) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let slot = flags
                .iter_mut()
                .find(|(n, _)| *n == name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            *slot.1 = value.clone();
        } else {
            positional.push(a.clone());
        }
    }
    Ok(positional)
}

fn generate(args: &[String]) -> Result<(), String> {
    let mut records = "50".to_string();
    let mut seed = "2005".to_string();
    let mut style = "0".to_string();
    let mut out = "notes".to_string();
    parse_flags(
        args,
        &mut [
            ("records", &mut records),
            ("seed", &mut seed),
            ("style", &mut style),
            ("out", &mut out),
        ],
    )?;
    let n: usize = records.parse().map_err(|_| "--records must be an integer".to_string())?;
    let seed: u64 = seed.parse().map_err(|_| "--seed must be an integer".to_string())?;
    let style: f64 = style.parse().map_err(|_| "--style must be a number".to_string())?;
    let dir = PathBuf::from(out);
    fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let corpus = CorpusBuilder::new().records(n).seed(seed).style_variation(style).build();
    for rec in &corpus.records {
        let path = dir.join(format!("patient_{:03}.txt", rec.patient_id));
        fs::write(&path, &rec.text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        let gold = dir.join(format!("patient_{:03}.gold.json", rec.patient_id));
        let json = serde_json::to_string_pretty(rec).map_err(|e| e.to_string())?;
        fs::write(&gold, json).map_err(|e| format!("writing {}: {e}", gold.display()))?;
    }
    println!("wrote {n} notes (+ gold labels) to {}", dir.display());
    Ok(())
}

fn extract(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("extract needs at least one file".to_string());
    }
    let pipeline = Pipeline::with_default_schema();
    for path in args {
        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let out = pipeline.extract(&text);
        let json = serde_json::to_string(&out).map_err(|e| e.to_string())?;
        println!("{json}");
    }
    Ok(())
}

fn parse(args: &[String]) -> Result<(), String> {
    let sentence = args.join(" ");
    if sentence.trim().is_empty() {
        return Err("parse needs a sentence".to_string());
    }
    let parser = LinkParser::new();
    match parser.parse_sentence(&sentence) {
        Some(linkage) => {
            println!("{}", linkage.diagram());
            let c = linkage.constituents();
            let toks = tokenize(&sentence);
            let words = |idxs: &[usize]| {
                idxs.iter().map(|&i| toks[i].text.as_str()).collect::<Vec<_>>().join(" ")
            };
            println!("subject:    [{}]", words(&c.subject));
            println!("verb:       [{}]", words(&c.verb));
            println!("object:     [{}]", words(&c.object));
            println!("supplement: [{}]", words(&c.supplement));
            Ok(())
        }
        None => Err("no linkage (a fragment? the extractors fall back to patterns here)".to_string()),
    }
}

fn terms(args: &[String]) -> Result<(), String> {
    let text = args.join(" ");
    if text.trim().is_empty() {
        return Err("terms needs text".to_string());
    }
    let ex = MedicalTermExtractor::new(Ontology::full());
    let hits = ex.extract(&text);
    if hits.is_empty() {
        println!("no medical terms found");
    }
    for h in hits {
        println!(
            "{:<30} -> {} [{}] ({})",
            format!("\"{}\"", h.surface),
            h.concept.preferred,
            h.concept.cui,
            h.concept.semtype
        );
    }
    Ok(())
}
