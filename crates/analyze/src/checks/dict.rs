//! Link-grammar dictionary checks (`CMR-D001` … `CMR-D007`).
//!
//! The dictionary is three tables: class expressions (`CLASS_DEFS`), the
//! explicit word table (`WORD_CLASSES`) and the POS-tag fallback
//! (`TAG_CLASSES`). These checks compile the expressions exactly as the
//! dictionary build does and then reason about the compiled connector
//! inventory, so a connector typo (a left `X-` with no right `X+` anywhere)
//! is caught here instead of silently making every linkage through that
//! disjunct impossible.

use crate::{Diagnostic, Severity};
use cmr_linkgram::{expand, parse_expr, Connector, Dir, Disjunct};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Workspace-relative path of the dictionary source.
pub const ASSET: &str = "crates/linkgram/src/dict.rs";

/// Mirrors the dictionary build's expansion cap.
const EXPANSION_CAP: usize = 100_000;

/// Runs every dictionary check over arbitrary tables. `class_defs` is the
/// `(class, expression)` table; `word_rows` the `(word, class)` table;
/// `tag_rows` the `(tag name, class)` fallback table.
pub fn check_tables(
    class_defs: &[(&str, &str)],
    word_rows: &[(&str, &str)],
    tag_rows: &[(String, &str)],
    out: &mut Vec<Diagnostic>,
) {
    check_duplicate_rows(class_defs, word_rows, tag_rows, out);

    // Compile each class once, the way the dictionary build does.
    let mut compiled: Vec<(&str, Vec<Disjunct>)> = Vec::new();
    let mut defined: HashSet<&str> = HashSet::new();
    for (name, text) in class_defs {
        if !defined.insert(name) {
            continue; // duplicate definition already reported
        }
        match parse_expr(text) {
            Err(err) => {
                out.push(
                    Diagnostic::new(
                        "CMR-D001",
                        Severity::Error,
                        ASSET,
                        format!("CLASS_DEFS[\"{name}\"]"),
                        format!("class expression fails to parse: {err}"),
                    )
                    .with_fix("fix the connector expression syntax"),
                );
            }
            Ok(expr) => {
                let disjuncts = expand(&expr, EXPANSION_CAP);
                if disjuncts.is_empty() {
                    out.push(Diagnostic::new(
                        "CMR-D006",
                        Severity::Warning,
                        ASSET,
                        format!("CLASS_DEFS[\"{name}\"]"),
                        "class compiles to zero disjuncts, so its words can never link",
                    ));
                }
                compiled.push((name, disjuncts));
            }
        }
    }

    check_undefined_classes(&defined, word_rows, tag_rows, out);
    check_unreachable_classes(&defined, word_rows, tag_rows, out);
    check_unmated_connectors(&compiled, out);
    check_shadowed_disjuncts(&compiled, out);
}

/// `CMR-D005`: the same key defined twice in one table (the build's
/// `HashMap` insert lets the later row silently shadow the earlier one).
fn check_duplicate_rows(
    class_defs: &[(&str, &str)],
    word_rows: &[(&str, &str)],
    tag_rows: &[(String, &str)],
    out: &mut Vec<Diagnostic>,
) {
    let tables: [(&str, Vec<&str>); 3] = [
        ("CLASS_DEFS", class_defs.iter().map(|(k, _)| *k).collect()),
        ("WORD_CLASSES", word_rows.iter().map(|(k, _)| *k).collect()),
        (
            "TAG_CLASSES",
            tag_rows.iter().map(|(k, _)| k.as_str()).collect(),
        ),
    ];
    for (table, keys) in &tables {
        let mut seen: HashSet<&str> = HashSet::new();
        for key in keys {
            if !seen.insert(key) {
                out.push(
                    Diagnostic::new(
                        "CMR-D005",
                        Severity::Warning,
                        ASSET,
                        format!("{table}[\"{key}\"]"),
                        format!("table {table} defines \"{key}\" twice; the later row shadows the earlier"),
                    )
                    .with_fix("remove one of the rows"),
                );
            }
        }
    }
}

/// `CMR-D004`: a word or tag row routes to a class the dictionary never
/// defines — the build would panic on it.
fn check_undefined_classes(
    defined: &HashSet<&str>,
    word_rows: &[(&str, &str)],
    tag_rows: &[(String, &str)],
    out: &mut Vec<Diagnostic>,
) {
    for (word, class) in word_rows {
        if !defined.contains(class) {
            out.push(Diagnostic::new(
                "CMR-D004",
                Severity::Error,
                ASSET,
                format!("WORD_CLASSES[\"{word}\"]"),
                format!("word routes to undefined class \"{class}\" (the dictionary build panics on it)"),
            ));
        }
    }
    for (tag, class) in tag_rows {
        if !defined.contains(class) {
            out.push(Diagnostic::new(
                "CMR-D004",
                Severity::Error,
                ASSET,
                format!("TAG_CLASSES[{tag}]"),
                format!(
                    "tag routes to undefined class \"{class}\" (the dictionary build panics on it)"
                ),
            ));
        }
    }
}

/// `CMR-D007`: a defined class no word row, tag row, or wall ever routes
/// to. Its disjuncts are compiled and carried around but can never take
/// part in a parse.
fn check_unreachable_classes(
    defined: &HashSet<&str>,
    word_rows: &[(&str, &str)],
    tag_rows: &[(String, &str)],
    out: &mut Vec<Diagnostic>,
) {
    let mut reachable: HashSet<&str> = HashSet::new();
    reachable.insert("LEFT-WALL");
    for (_, class) in word_rows {
        reachable.insert(class);
    }
    for (_, class) in tag_rows {
        reachable.insert(class);
    }
    let mut dead: Vec<&str> = defined.difference(&reachable).copied().collect();
    dead.sort_unstable();
    for name in dead {
        out.push(
            Diagnostic::new(
                "CMR-D007",
                Severity::Warning,
                ASSET,
                format!("CLASS_DEFS[\"{name}\"]"),
                format!(
                    "class \"{name}\" is defined but no word row, tag row, or wall routes to it"
                ),
            )
            .with_fix("remove the class, or route a word/tag row to it"),
        );
    }
}

/// `CMR-D002`: a connector with no possible mate anywhere in the compiled
/// dictionary. Every disjunct containing it is dead.
fn check_unmated_connectors(compiled: &[(&str, Vec<Disjunct>)], out: &mut Vec<Diagnostic>) {
    // Distinct connectors by display form, with the first class that uses
    // them (deterministic: compilation order).
    let mut lefts: BTreeMap<String, (&str, Connector)> = BTreeMap::new();
    let mut rights: BTreeMap<String, (&str, Connector)> = BTreeMap::new();
    for (class, disjuncts) in compiled {
        for d in disjuncts {
            for c in d.left.iter().chain(d.right.iter()) {
                let side = match c.dir {
                    Dir::Left => &mut lefts,
                    Dir::Right => &mut rights,
                };
                side.entry(c.to_string()).or_insert((class, c.clone()));
            }
        }
    }
    for (display, (class, left)) in &lefts {
        let mated = rights.values().any(|(_, r)| r.matches(left));
        if !mated {
            out.push(Diagnostic::new(
                "CMR-D002",
                Severity::Warning,
                ASSET,
                format!("CLASS_DEFS[\"{class}\"] connector {display}"),
                format!("left connector {display} has no matching right connector anywhere; every disjunct using it is dead"),
            ));
        }
    }
    for (display, (class, right)) in &rights {
        let mated = lefts.values().any(|(_, l)| right.matches(l));
        if !mated {
            out.push(Diagnostic::new(
                "CMR-D002",
                Severity::Warning,
                ASSET,
                format!("CLASS_DEFS[\"{class}\"] connector {display}"),
                format!("right connector {display} has no matching left connector anywhere; every disjunct using it is dead"),
            ));
        }
    }
}

/// `CMR-D003`: disjuncts of one class that normalize to the same
/// `(left, right)` shape. The build collapses them to the cheapest, so any
/// cost difference between them is dead weight; emitted per class as an
/// aggregate note because expression expansion produces them in bulk.
fn check_shadowed_disjuncts(compiled: &[(&str, Vec<Disjunct>)], out: &mut Vec<Diagnostic>) {
    for (class, disjuncts) in compiled {
        let mut shapes: HashMap<String, usize> = HashMap::new();
        for d in disjuncts {
            *shapes.entry(shape_key(d)).or_insert(0) += 1;
        }
        let mut dupes: Vec<(&String, usize)> = shapes
            .iter()
            .filter(|(_, &n)| n > 1)
            .map(|(k, &n)| (k, n))
            .collect();
        if dupes.is_empty() {
            continue;
        }
        dupes.sort();
        let total: usize = dupes.iter().map(|(_, n)| n - 1).sum();
        let (example, _) = dupes[0];
        out.push(Diagnostic::new(
            "CMR-D003",
            Severity::Note,
            ASSET,
            format!("CLASS_DEFS[\"{class}\"]"),
            format!(
                "{total} disjunct(s) duplicate another's shape and collapse to the cheapest at build (e.g. {example})"
            ),
        ));
    }
}

/// Canonical display of a disjunct's `(left, right)` connector shape.
fn shape_key(d: &Disjunct) -> String {
    let side = |cs: &[Connector]| {
        cs.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    format!("[{} | {}]", side(&d.left), side(&d.right))
}

/// Runs the dictionary checks over the committed tables.
pub fn check(out: &mut Vec<Diagnostic>) {
    let tag_rows: Vec<(String, &str)> = cmr_linkgram::tag_classes()
        .iter()
        .map(|(tag, class)| (format!("{tag:?}"), *class))
        .collect();
    check_tables(
        cmr_linkgram::class_defs(),
        cmr_linkgram::word_classes(),
        &tag_rows,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        class_defs: &[(&str, &str)],
        word_rows: &[(&str, &str)],
        tag_rows: &[(&str, &str)],
    ) -> Vec<Diagnostic> {
        let tags: Vec<(String, &str)> = tag_rows.iter().map(|(t, c)| (t.to_string(), *c)).collect();
        let mut out = Vec::new();
        check_tables(class_defs, word_rows, &tags, &mut out);
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn committed_dictionary_is_clean_at_warning() {
        let mut out = Vec::new();
        check(&mut out);
        let bad: Vec<_> = out
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(bad.is_empty(), "committed dictionary regressed: {bad:#?}");
    }

    /// Regression: the dictionary used to define a `have-base` class
    /// ("will have") that no word or tag row ever routed to — "have" is
    /// routed to `have-p` unconditionally. CMR-D007 is the diagnostic that
    /// found it.
    #[test]
    fn unreachable_class_regression_have_base() {
        let diags = run(
            &[
                ("LEFT-WALL", "Wd+"),
                ("have-p", "{@E-} & Sp- & (T+ or O+ or TO+) & {@MV+} & {N+}"),
                ("have-base", "I- & (T+ or O+) & {@MV+}"),
                (
                    "noun-sg",
                    "{Wd-} & (O- or TO- or N- or E+ or MV- or T- or I+ or Sp+)",
                ),
            ],
            &[("have", "have-p")],
            &[("NN", "noun-sg")],
        );
        let d007: Vec<_> = diags.iter().filter(|d| d.code == "CMR-D007").collect();
        assert_eq!(d007.len(), 1, "{diags:#?}");
        assert!(d007[0].span.contains("have-base"));
        assert_eq!(d007[0].severity, Severity::Warning);
    }

    #[test]
    fn undefined_class_is_an_error() {
        let diags = run(
            &[("LEFT-WALL", "Wd+")],
            &[("the", "det")],
            &[("NN", "ghost")],
        );
        let d004: Vec<_> = diags.iter().filter(|d| d.code == "CMR-D004").collect();
        assert_eq!(d004.len(), 2, "{diags:#?}");
        assert!(d004.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn duplicate_rows_are_flagged() {
        let diags = run(
            &[("LEFT-WALL", "Wd+"), ("a", "Wd-"), ("a", "Wd-")],
            &[("the", "a"), ("the", "a")],
            &[("NN", "a")],
        );
        let d005 = codes(&diags).iter().filter(|c| **c == "CMR-D005").count();
        assert_eq!(d005, 2, "{diags:#?}");
    }

    #[test]
    fn bad_expression_is_an_error() {
        let diags = run(&[("broken", "(Wd+ or")], &[], &[]);
        assert!(codes(&diags).contains(&"CMR-D001"), "{diags:#?}");
    }

    #[test]
    fn unmated_connector_is_flagged() {
        // Q+ has no Q- anywhere.
        let diags = run(
            &[("LEFT-WALL", "Wd+"), ("x", "Wd- & {Q+}")],
            &[("w", "x")],
            &[],
        );
        let d002: Vec<_> = diags.iter().filter(|d| d.code == "CMR-D002").collect();
        assert_eq!(d002.len(), 1, "{diags:#?}");
        assert!(d002[0].span.contains("Q+"), "{:?}", d002[0]);
    }

    #[test]
    fn mismatched_subscripts_are_unmated() {
        // Sa+ and Sb- share a base but their subscripts cannot unify.
        let diags = run(
            &[("LEFT-WALL", "Wd+"), ("x", "Wd- & Sa+"), ("y", "Sb-")],
            &[("w", "x"), ("v", "y")],
            &[],
        );
        let d002 = codes(&diags).iter().filter(|c| **c == "CMR-D002").count();
        assert_eq!(d002, 2, "both sides lack a mate: {diags:#?}");
    }

    #[test]
    fn shadowed_disjuncts_are_a_note() {
        // {A-} & B+ & {A-} expands the A- slot twice; the one-A- variants
        // collide in shape.
        let diags = run(
            &[("LEFT-WALL", "B+"), ("x", "{B-} & A+ & {B-}"), ("y", "A-")],
            &[("w", "x"), ("v", "y")],
            &[],
        );
        let d003: Vec<_> = diags.iter().filter(|d| d.code == "CMR-D003").collect();
        assert_eq!(d003.len(), 1, "{diags:#?}");
        assert_eq!(d003[0].severity, Severity::Note);
    }
}
