//! End-to-end CLI tests: drive the real `cmr` binary the way a user would
//! — generate a cohort, extract it in parallel — and check the contract
//! that matters for scripting: one valid JSON object per note, in input
//! order, byte-identical for any `--jobs` value.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn cmr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmr"))
}

/// A fresh scratch directory under the target-owned temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmr-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn generate_notes(dir: &std::path::Path, records: usize) -> Vec<PathBuf> {
    let status = cmr()
        .args([
            "generate",
            "--records",
            &records.to_string(),
            "--seed",
            "42",
            "--out",
            dir.to_str().expect("utf-8 path"),
        ])
        .status()
        .expect("run cmr generate");
    assert!(status.success(), "generate failed");
    let mut notes: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read scratch dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    notes.sort();
    assert_eq!(notes.len(), records, "one .txt note per record");
    notes
}

fn extract_stdout(notes: &[PathBuf], jobs: &str) -> String {
    let out = cmr()
        .arg("extract")
        .args(["--jobs", jobs])
        .args(notes)
        .output()
        .expect("run cmr extract");
    assert!(
        out.status.success(),
        "extract --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn generate_then_extract_parallel_yields_json_per_note() {
    let dir = scratch("extract");
    let notes = generate_notes(&dir, 8);

    let stdout = extract_stdout(&notes, "4");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "one output line per note");
    for (i, line) in lines.iter().enumerate() {
        let value = serde_json::parse_value_str(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e:?}): {line}"));
        let serde::Value::Object(fields) = value else {
            panic!("line {i} is not a JSON object: {line}");
        };
        assert!(
            fields.iter().any(|(k, _)| k == "numeric"),
            "line {i} has no numeric field: {line}"
        );
    }

    // The scripting contract: worker count never changes the bytes.
    let serial = extract_stdout(&notes, "1");
    assert_eq!(serial, stdout, "--jobs 1 and --jobs 4 outputs differ");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Pins the NDJSON stdin contract of `cmr extract -`: blank lines,
/// whitespace-only lines, and the trailing newline are separators, not
/// records — exactly one output line per real note, in order, with no
/// in-band error objects. The serve batch endpoint shares this reader.
#[test]
fn extract_stdin_skips_blank_lines_and_trailing_newline() {
    let stdin_body = concat!(
        "{\"text\":\"Vitals:  Pulse of 84.\"}\n",
        "\n",
        "   \t  \n",
        "\"Vitals:  Temperature is 98.6.\"\n",
        "\n",
        "Vitals:  Blood pressure is 120/80.\n",
        "\n",
    );
    let mut child = cmr()
        .args(["extract", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cmr extract -");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stdin_body.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("run cmr extract -");
    assert!(
        out.status.success(),
        "extract - failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines.len(),
        3,
        "three real notes in, three records out:\n{stdout}"
    );
    for (i, line) in lines.iter().enumerate() {
        let value = serde_json::parse_value_str(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e:?}): {line}"));
        let serde::Value::Object(fields) = value else {
            panic!("line {i} is not a JSON object: {line}");
        };
        assert!(
            fields.iter().any(|(k, _)| k == "numeric"),
            "line {i} has no numeric field: {line}"
        );
        assert!(
            !fields.iter().any(|(k, _)| k == "error"),
            "line {i} is an in-band error: {line}"
        );
    }

    let expect = [("pulse", 0), ("temperature", 1), ("blood_pressure", 2)];
    for (field, idx) in expect {
        assert!(
            lines[idx].contains(field),
            "record {idx} should carry {field}: {}",
            lines[idx]
        );
    }
}

#[test]
fn chaos_sweep_reports_degradation_curve() {
    let dir = scratch("chaos");
    let report_path = dir.join("chaos.json");
    let out = cmr()
        .args([
            "chaos",
            "--noise",
            "0,0.2",
            "--seed",
            "7",
            "--records",
            "6",
            "--jobs",
            "2",
            "--stats",
            "--out",
            report_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run cmr chaos");
    assert!(
        out.status.success(),
        "chaos failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("num-F1"), "no curve table:\n{stdout}");
    assert!(stdout.contains("salvage"), "--stats tier table missing");

    let json = std::fs::read_to_string(&report_path).expect("report written");
    let value = serde_json::parse_value_str(&json).expect("report is valid JSON");
    let serde::Value::Object(fields) = value else {
        panic!("report is not a JSON object");
    };
    let levels = fields
        .iter()
        .find(|(k, _)| k == "levels")
        .map(|(_, v)| v)
        .expect("report has levels");
    let serde::Value::Array(levels) = levels else {
        panic!("levels is not an array");
    };
    assert_eq!(levels.len(), 2, "one report entry per noise level");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ndjson_streaming_pipes_generate_into_extract() {
    // cmr generate --out - | cmr extract - --jobs 2
    let generated = cmr()
        .args(["generate", "--records", "4", "--seed", "7", "--out", "-"])
        .output()
        .expect("run cmr generate --out -");
    assert!(generated.status.success());
    let ndjson = generated.stdout;
    assert_eq!(
        ndjson
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count(),
        4
    );

    let mut child = cmr()
        .args(["extract", "-", "--jobs", "2", "--stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cmr extract -");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(&ndjson)
        .expect("feed NDJSON");
    let out = child.wait_with_output().expect("wait for extract");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_eq!(
        stdout.lines().count(),
        4,
        "one extraction per streamed record"
    );
    for line in stdout.lines() {
        serde_json::parse_value_str(line).expect("valid JSON per line");
    }

    // --stats emits a JSON metrics document on stderr.
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    let metrics = serde_json::parse_value_str(stderr.trim()).expect("stats are valid JSON");
    let serde::Value::Object(fields) = metrics else {
        panic!("stats not an object")
    };
    assert!(
        fields.iter().any(|(k, _)| k == "records_per_sec"),
        "{stderr}"
    );
}

#[test]
fn lint_passes_deny_warnings_and_formats_agree() {
    // The committed assets must be clean at the warning threshold.
    let human = cmr()
        .args(["lint", "--deny", "warnings", "--no-color"])
        .output()
        .expect("run cmr lint");
    assert!(
        human.status.success(),
        "committed assets fail `cmr lint --deny warnings`:\n{}",
        String::from_utf8_lossy(&human.stdout)
    );
    let text = String::from_utf8(human.stdout).expect("utf-8");
    assert!(text.contains("0 errors, 0 warnings"), "{text}");
    assert!(!text.contains('\u{1b}'), "--no-color must strip ANSI");

    // JSON output parses and its summary agrees with the human render.
    let json = cmr()
        .args(["lint", "--format", "json"])
        .output()
        .expect("run cmr lint --format json");
    assert!(json.status.success());
    let doc = serde_json::parse_value_str(String::from_utf8(json.stdout).expect("utf-8").trim())
        .expect("lint JSON parses");
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(summary.get("errors"), Some(&serde::Value::Int(0)));
    assert_eq!(summary.get("warnings"), Some(&serde::Value::Int(0)));

    // SARIF output parses and declares the driver.
    let sarif = cmr()
        .args(["lint", "--format", "sarif"])
        .output()
        .expect("run cmr lint --format sarif");
    assert!(sarif.status.success());
    let doc = serde_json::parse_value_str(String::from_utf8(sarif.stdout).expect("utf-8").trim())
        .expect("SARIF parses");
    let runs = doc.get("runs").and_then(|r| r.as_array()).expect("runs");
    assert_eq!(runs.len(), 1);
}

#[test]
fn journaled_crash_then_resume_is_byte_identical() {
    let dir = scratch("journal-resume");
    let notes = generate_notes(&dir, 6);
    let journal = dir.join("run.journal");
    let uninterrupted = extract_stdout(&notes, "2");

    // Crash-inject: abort the process right after the 2nd record is
    // journaled (no unwinding, no atexit flushes — a hard kill).
    let crashed = cmr()
        .arg("extract")
        .args(["--jobs", "2", "--journal"])
        .arg(&journal)
        .args(["--kill-after", "2"])
        .args(&notes)
        .output()
        .expect("run crashing extract");
    assert!(!crashed.status.success(), "--kill-after must abort");
    let partial = String::from_utf8(crashed.stdout).expect("utf-8");
    assert_eq!(
        partial.lines().count(),
        2,
        "per-record flush: both journaled records reached stdout before the abort"
    );
    assert!(
        uninterrupted.starts_with(&partial),
        "partial output is a prefix of the uninterrupted run"
    );

    // Resume: replays the journaled prefix and finishes the rest.
    let resumed = cmr()
        .arg("extract")
        .args(["--jobs", "2", "--journal"])
        .arg(&journal)
        .arg("--resume")
        .args(&notes)
        .output()
        .expect("run resumed extract");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8(resumed.stdout).expect("utf-8"),
        uninterrupted,
        "resumed output must be byte-identical to the uninterrupted run"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("resuming") && stderr.contains("2/6"),
        "resume reports the replayed prefix: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_against_a_different_corpus_is_rejected() {
    let dir = scratch("journal-mismatch");
    let notes = generate_notes(&dir, 4);
    let journal = dir.join("run.journal");
    let ok = cmr()
        .arg("extract")
        .arg("--journal")
        .arg(&journal)
        .args(&notes)
        .output()
        .expect("run journaled extract");
    assert!(ok.status.success());

    // Same journal, fewer notes: the manifest must refuse the merge.
    let out = cmr()
        .arg("extract")
        .arg("--journal")
        .arg(&journal)
        .arg("--resume")
        .args(&notes[..2])
        .output()
        .expect("run mismatched resume");
    assert_eq!(out.status.code(), Some(2), "manifest mismatch is an error");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot resume"),
        "stderr names the refusal: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigint_drains_flushes_the_journal_and_exits_three() {
    let dir = scratch("journal-sigint");
    let journal = dir.join("run.journal");

    // A corpus big enough that the signal lands mid-run.
    let generated = cmr()
        .args(["generate", "--records", "800", "--seed", "5", "--out", "-"])
        .output()
        .expect("run cmr generate --out -");
    assert!(generated.status.success());

    let mut child = cmr()
        .arg("extract")
        .args(["-", "--jobs", "2", "--journal"])
        .arg(&journal)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cmr extract");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(&generated.stdout)
        .expect("feed NDJSON");
    std::thread::sleep(std::time::Duration::from_millis(300));
    // SIGINT, as ctrl-C would deliver it.
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success());
    let out = child.wait_with_output().expect("wait for extract");

    assert_eq!(
        out.status.code(),
        Some(3),
        "interrupted run exits 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let emitted = stdout.lines().count();
    assert!(
        emitted > 0 && emitted < 800,
        "drain stopped early but not empty: {emitted} records"
    );
    // Every record on stdout is in the flushed journal (manifest + one
    // line each), and every journal line is complete NDJSON.
    let journal_text = std::fs::read_to_string(&journal).expect("journal flushed");
    let journal_lines: Vec<&str> = journal_text.lines().collect();
    assert_eq!(
        journal_lines.len(),
        emitted + 1,
        "journal = manifest + one line per emitted record"
    );
    for line in &journal_lines {
        serde_json::parse_value_str(line).expect("complete JSON per journal line");
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_files_the_poison_record_and_the_batch_survives() {
    let dir = scratch("quarantine");
    // Two sentences under a one-sentence budget: deterministic transient
    // failure on every attempt — a poison record.
    let poison = dir.join("poison.txt");
    std::fs::write(
        &poison,
        "Vitals:  Blood pressure is 144/90.  Pulse of 84 was noted.\n",
    )
    .expect("write poison note");
    let good = dir.join("good.txt");
    std::fs::write(&good, "Vitals:  Temperature 98.6, weight 150 pounds.\n")
        .expect("write good note");
    let qpath = dir.join("quarantine.ndjson");

    let out = cmr()
        .arg("extract")
        .args(["--max-sentences", "1", "--retries", "2", "--quarantine"])
        .arg(&qpath)
        .arg(&poison)
        .arg(&good)
        .output()
        .expect("run extract with quarantine");
    assert!(out.status.success(), "poison record must not abort the run");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "both records produce a line");
    assert!(lines[0].starts_with("{\"error\":"), "{}", lines[0]);
    assert!(!lines[1].starts_with("{\"error\":"), "{}", lines[1]);

    let quarantined = std::fs::read_to_string(&qpath).expect("quarantine written");
    let entries: Vec<&str> = quarantined.lines().collect();
    assert_eq!(entries.len(), 1, "poison record quarantined exactly once");
    let entry = serde_json::parse_value_str(entries[0]).expect("entry parses");
    assert_eq!(entry.get("index"), Some(&serde::Value::Int(0)));
    let attempts = entry
        .get("attempts")
        .and_then(|a| a.as_array())
        .expect("attempt history");
    assert_eq!(attempts.len(), 2, "one record per attempt");

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn chaos_sigint_flushes_a_partial_report_and_exits_three() {
    let dir = scratch("chaos-sigint");
    let report_path = dir.join("chaos.json");
    let child = cmr()
        .args([
            "chaos",
            "--noise",
            "0..0.5",
            "--records",
            "400",
            "--jobs",
            "2",
            "--out",
        ])
        .arg(&report_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cmr chaos");
    std::thread::sleep(std::time::Duration::from_millis(800));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success());
    let out = child.wait_with_output().expect("wait for chaos");

    assert_eq!(
        out.status.code(),
        Some(3),
        "interrupted sweep exits 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report_path).expect("partial report flushed");
    let doc = serde_json::parse_value_str(&json).expect("report parses");
    assert_eq!(
        doc.get("interrupted"),
        Some(&serde::Value::Bool(true)),
        "partial report is marked interrupted"
    );
    let levels = doc
        .get("levels")
        .and_then(|l| l.as_array())
        .expect("levels array");
    assert!(
        levels.len() < 6,
        "sweep stopped before all 6 levels ({} done)",
        levels.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_deny_notes_exits_one_without_usage_noise() {
    // The committed assets do carry advisory notes; denying notes must
    // exit 1 (a lint failure), not 2 (a usage error).
    let out = cmr()
        .args(["lint", "--deny", "notes", "--no-color"])
        .output()
        .expect("run cmr lint --deny notes");
    assert_eq!(out.status.code(), Some(1), "lint failure must exit 1");
    assert!(
        String::from_utf8_lossy(&out.stderr).is_empty(),
        "deny failure is not a usage error"
    );
}
