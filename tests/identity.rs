//! Byte-identity regression gate for the extraction output.
//!
//! Runs the full 50-record gold corpus through the default pipeline and
//! compares the serialized extractions byte-for-byte against the committed
//! snapshot. Performance work (interning, cache eviction, arena parsing)
//! must never change what gets extracted; this test is the proof.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! UPDATE_SNAPSHOT=1 cargo test --test identity
//! ```

use cmr::prelude::*;

const SNAPSHOT_PATH: &str = "tests/snapshots/gold_extractions.json";

/// One deterministic serialization of the whole gold corpus's extractions.
/// `ExtractedRecord`'s maps are `BTreeMap`s and its vectors are built in
/// deterministic order, so equal extractions serialize to equal bytes.
fn render_extractions() -> String {
    let corpus = CorpusBuilder::new().build();
    let pipeline = Pipeline::with_default_schema();
    let mut out = String::from("[\n");
    for (i, rec) in corpus.records.iter().enumerate() {
        let extracted = pipeline.extract(&rec.text);
        let json = serde_json::to_string_pretty(&extracted).expect("record serializes");
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&json);
    }
    out.push_str("\n]\n");
    out
}

#[test]
fn gold_corpus_extraction_is_byte_identical_to_snapshot() {
    let current = render_extractions();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT_PATH);

    if std::env::var_os("UPDATE_SNAPSHOT").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir snapshots");
        std::fs::write(&path, &current).expect("write snapshot");
        eprintln!("identity: snapshot regenerated at {}", path.display());
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run `UPDATE_SNAPSHOT=1 cargo test --test identity`",
            path.display()
        )
    });
    if current != committed {
        // Pinpoint the first divergence so the failure is debuggable
        // without diffing two multi-thousand-line JSON blobs by hand.
        let byte = current
            .bytes()
            .zip(committed.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| current.len().min(committed.len()));
        let line = committed[..byte.min(committed.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1;
        let ctx = |s: &str| {
            let start = byte.saturating_sub(120).min(s.len());
            let end = (byte + 120).min(s.len());
            s[start..end].to_string()
        };
        panic!(
            "gold-corpus extraction diverged from the committed snapshot at byte {byte} \
             (snapshot line {line}).\n--- snapshot ---\n{}\n--- current ---\n{}\n\
             If the output change is intentional, regenerate with \
             `UPDATE_SNAPSHOT=1 cargo test --test identity`.",
            ctx(&committed),
            ctx(&current),
        );
    }
}

#[test]
fn snapshot_is_committed_and_nonempty() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT_PATH);
    let committed = std::fs::read_to_string(&path).expect("snapshot file exists");
    assert!(committed.len() > 1000, "snapshot suspiciously small");
    assert!(committed.trim_start().starts_with('['));
    assert!(committed.trim_end().ends_with(']'));
}
