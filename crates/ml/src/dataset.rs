//! Boolean-feature datasets for the ID3 classifier.
//!
//! §3.3: "the presence of a certain word is treated as a Boolean feature."

use std::collections::HashMap;

/// One training/test instance: a boolean feature vector and a class label
/// (index into the dataset's label table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Feature values, aligned with [`Dataset::feature_names`].
    pub features: Vec<bool>,
    /// Class label index.
    pub label: usize,
}

/// A dataset: named boolean features, named labels, instances.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature names (e.g. lemmas: `"quit"`, `"never"`, `"smoker"`).
    pub feature_names: Vec<String>,
    /// Class label names (e.g. `"never"`, `"former"`, `"current"`).
    pub label_names: Vec<String>,
    /// The instances.
    pub instances: Vec<Instance>,
}

impl Dataset {
    /// Creates an empty dataset with fixed label names.
    pub fn new(label_names: Vec<String>) -> Dataset {
        Dataset {
            feature_names: Vec::new(),
            label_names,
            instances: Vec::new(),
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when there are no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_labels(&self) -> usize {
        self.label_names.len()
    }

    /// Class distribution (count per label index).
    pub fn label_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_labels()];
        for inst in &self.instances {
            counts[inst.label] += 1;
        }
        counts
    }

    /// A dataset with the same schema but only the selected instances
    /// (by index). Used by cross-validation.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            label_names: self.label_names.clone(),
            instances: indices.iter().map(|&i| self.instances[i].clone()).collect(),
        }
    }
}

/// Incremental builder that interns feature names on the fly: add instances
/// as (feature-name list, label-name), and the builder maintains the
/// feature/label tables.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    feature_ids: HashMap<String, usize>,
    label_ids: HashMap<String, usize>,
    feature_names: Vec<String>,
    label_names: Vec<String>,
    rows: Vec<(Vec<usize>, usize)>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> DatasetBuilder {
        DatasetBuilder::default()
    }

    /// Adds an instance given its *present* features and its label name.
    pub fn add(&mut self, present_features: &[String], label: &str) {
        let mut ids = Vec::with_capacity(present_features.len());
        for f in present_features {
            let next = self.feature_ids.len();
            let id = *self.feature_ids.entry(f.clone()).or_insert(next);
            if id == self.feature_names.len() {
                self.feature_names.push(f.clone());
            }
            ids.push(id);
        }
        let next = self.label_ids.len();
        let label_id = *self.label_ids.entry(label.to_string()).or_insert(next);
        if label_id == self.label_names.len() {
            self.label_names.push(label.to_string());
        }
        self.rows.push((ids, label_id));
    }

    /// Finalizes into a dense [`Dataset`].
    pub fn build(self) -> Dataset {
        let n = self.feature_names.len();
        let instances = self
            .rows
            .into_iter()
            .map(|(ids, label)| {
                let mut features = vec![false; n];
                for id in ids {
                    features[id] = true;
                }
                Instance { features, label }
            })
            .collect();
        Dataset {
            feature_names: self.feature_names,
            label_names: self.label_names,
            instances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interning() {
        let mut b = DatasetBuilder::new();
        b.add(&["quit".into(), "smoke".into()], "former");
        b.add(&["smoke".into(), "currently".into()], "current");
        b.add(&[], "never");
        let d = b.build();
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_labels(), 3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.instances[0].features, vec![true, true, false]);
        assert_eq!(d.instances[1].features, vec![false, true, true]);
        assert_eq!(d.instances[2].features, vec![false, false, false]);
    }

    #[test]
    fn label_counts() {
        let mut b = DatasetBuilder::new();
        b.add(&[], "a");
        b.add(&[], "b");
        b.add(&[], "a");
        let d = b.build();
        assert_eq!(d.label_counts(), vec![2, 1]);
    }

    #[test]
    fn subset_preserves_schema() {
        let mut b = DatasetBuilder::new();
        b.add(&["x".into()], "a");
        b.add(&["y".into()], "b");
        let d = b.build();
        let s = d.subset(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.n_features(), 2);
        assert_eq!(s.instances[0].label, 1);
    }
}
