//! Bounded retry with exponential backoff, and the poison quarantine.
//!
//! Transient failures — a wall-clock budget trip on a loaded machine, a
//! watchdog timeout, a panic whose trigger was environmental — are worth a
//! bounded number of re-attempts with exponential backoff. Failures that
//! are deterministic properties of the input (a sentence budget on an
//! oversized note) fail the same way every time; retrying them burns the
//! batch's time for nothing, so the engine distinguishes the two classes
//! via [`is_transient`].
//!
//! A record that exhausts its attempts on a transient error is *poison*:
//! the engine reports it as a per-item error (the batch keeps going) and,
//! when a [`QuarantineFile`] is attached, appends one NDJSON entry with
//! the record text, its final typed error, and the full attempt history —
//! enough to replay the record in isolation later.

use crate::engine::EngineError;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Upper bound on a single backoff sleep, milliseconds.
const MAX_BACKOFF_MILLIS: u64 = 1_000;

/// Bounded-retry policy for transiently failing records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per record (first try included). `1` — the default —
    /// disables retry entirely; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Backoff before attempt `k+1` is `base_delay_millis * 2^(k-1)`,
    /// capped at one second.
    pub base_delay_millis: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_millis: 25,
        }
    }
}

impl RetryPolicy {
    /// Total attempts, normalized to at least one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Backoff after failed attempt `attempt` (1-based), milliseconds.
    /// Deterministic — no jitter — so runs are reproducible.
    pub fn backoff_millis(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        self.base_delay_millis
            .saturating_mul(1u64 << shift)
            .min(MAX_BACKOFF_MILLIS)
    }
}

/// Whether an error class is worth retrying. Panics and wall-clock trips
/// (budget, watchdog timeout) can be environmental; aborts and lint
/// failures are deterministic verdicts about the run, not the record.
pub fn is_transient(error: &EngineError) -> bool {
    matches!(
        error,
        EngineError::Panicked { .. } | EngineError::Budget { .. } | EngineError::Timeout { .. }
    )
}

/// One failed attempt in a quarantine entry's history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The typed error this attempt ended with.
    pub error: EngineError,
    /// Backoff slept after this attempt (0 for the final one).
    pub backoff_millis: u64,
}

/// One poisoned record, as serialized into the quarantine file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The record's index in the input stream.
    pub index: usize,
    /// The full record text, so the entry is self-contained for replay.
    pub text: String,
    /// The error of the final attempt.
    pub error: EngineError,
    /// Every attempt, in order (the final one included).
    pub attempts: Vec<AttemptRecord>,
}

/// An append-only NDJSON file of poisoned records, shared by the pool's
/// workers. Writes are serialized by a mutex and flushed per entry;
/// they are *best-effort* — an IO error while quarantining must never
/// take down the batch the quarantine exists to protect.
#[derive(Debug)]
pub struct QuarantineFile {
    inner: Mutex<File>,
    /// Entry indices are rewritten to `base + index * stride` at append
    /// time: a shard run (`--shard i/N`) quarantines under *global*
    /// corpus indices, so merged quarantine files from different shards
    /// never collide. Identity (`0`, `1`) for unsharded runs.
    index_base: usize,
    index_stride: usize,
}

impl QuarantineFile {
    /// Creates (truncating) the quarantine file at `path`.
    pub fn create(path: &Path) -> std::io::Result<QuarantineFile> {
        Ok(QuarantineFile {
            inner: Mutex::new(File::create(path)?),
            index_base: 0,
            index_stride: 1,
        })
    }

    /// Opens the quarantine file at `path` for appending, creating it if
    /// absent — the resume path, where entries from a previous killed
    /// attempt must survive. (A record quarantined but not yet journaled
    /// at the kill is re-quarantined by the resumed attempt; `cmr merge`
    /// dedupes such double entries by index.)
    pub fn open_append(path: &Path) -> std::io::Result<QuarantineFile> {
        Ok(QuarantineFile {
            inner: Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            index_base: 0,
            index_stride: 1,
        })
    }

    /// Maps the stream-local indices this file is handed onto global
    /// corpus indices: entry `i` is written as `base + i * stride`.
    /// Shard `s` of `N` passes (`s`, `N`).
    pub fn with_index_mapping(mut self, base: usize, stride: usize) -> QuarantineFile {
        self.index_base = base;
        self.index_stride = stride.max(1);
        self
    }

    /// Appends one entry as a single NDJSON line, rewriting its index
    /// through the global index mapping. Returns whether the write fully
    /// succeeded; failure is reported, not propagated.
    ///
    /// Carries the `quarantine::append` failpoint (partial writes land
    /// their torn prefix, which `read_quarantine`'s blank-line filter and
    /// per-line parse surface rather than crash on).
    pub fn append(&self, entry: &QuarantineEntry) -> bool {
        let mapped;
        let entry = if self.index_base == 0 && self.index_stride == 1 {
            entry
        } else {
            mapped = QuarantineEntry {
                index: self.index_base + entry.index * self.index_stride,
                text: entry.text.clone(),
                error: entry.error.clone(),
                attempts: entry.attempts.clone(),
            };
            &mapped
        };
        let Ok(mut line) = serde_json::to_string(entry) else {
            return false;
        };
        line.push('\n');
        let mut file = self
            .inner
            .lock() // cmr:allow(S001) -- this mutex exists to serialize appends to one file; the write IS the critical section
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(inj) = cmr_failpoint::io_inject("quarantine::append") {
            if let cmr_failpoint::IoInjection::Partial(n) = inj {
                let cut = n.min(line.len());
                let _ = file.write_all(&line.as_bytes()[..cut]);
            }
            return false;
        }
        file.write_all(line.as_bytes()).is_ok() && file.flush().is_ok()
    }
}

/// Parses a quarantine file back into entries (diagnostics, tests).
pub fn read_quarantine(path: &Path) -> std::io::Result<Vec<QuarantineEntry>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| serde_json::from_str(line).map_err(|e| std::io::Error::other(format!("{e:?}"))))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_millis: 25,
        };
        assert_eq!(p.backoff_millis(1), 25);
        assert_eq!(p.backoff_millis(2), 50);
        assert_eq!(p.backoff_millis(3), 100);
        assert_eq!(p.backoff_millis(7), 1_000, "capped at one second");
        assert_eq!(p.backoff_millis(40), 1_000, "shift saturates, no overflow");
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&EngineError::Budget { sentences_done: 3 }));
        assert!(is_transient(&EngineError::Timeout { millis: 50 }));
        assert!(is_transient(&EngineError::Panicked {
            message: "boom".into()
        }));
        assert!(!is_transient(&EngineError::Aborted));
        assert!(!is_transient(&EngineError::Lint {
            message: "bad asset".into()
        }));
    }

    #[test]
    fn quarantine_index_mapping_and_append_reopen() {
        let path = std::env::temp_dir().join(format!("cmr-quar-map-{}.ndjson", std::process::id()));
        let entry = |index| QuarantineEntry {
            index,
            text: "note".into(),
            error: EngineError::Aborted,
            attempts: vec![],
        };
        // Shard 1 of 3: local index 2 is global index 1 + 2*3 = 7.
        let q = QuarantineFile::create(&path)
            .unwrap()
            .with_index_mapping(1, 3);
        assert!(q.append(&entry(2)));
        drop(q);
        let back = read_quarantine(&path).unwrap();
        assert_eq!(back[0].index, 7, "entries carry global corpus indices");

        // A resumed attempt reopens in append mode: prior entries survive.
        let q = QuarantineFile::open_append(&path)
            .unwrap()
            .with_index_mapping(1, 3);
        assert!(q.append(&entry(2)));
        drop(q);
        let back = read_quarantine(&path).unwrap();
        assert_eq!(back.len(), 2, "killed-attempt entry survives the resume");
        assert_eq!(back[0].index, back[1].index);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantine_roundtrips_through_the_file() {
        let path =
            std::env::temp_dir().join(format!("cmr-quar-test-{}.ndjson", std::process::id()));
        let q = QuarantineFile::create(&path).unwrap();
        let entry = QuarantineEntry {
            index: 7,
            text: "Patient: 1\nPulse is 84.\n".into(),
            error: EngineError::Timeout { millis: 50 },
            attempts: vec![
                AttemptRecord {
                    attempt: 1,
                    error: EngineError::Budget { sentences_done: 2 },
                    backoff_millis: 25,
                },
                AttemptRecord {
                    attempt: 2,
                    error: EngineError::Timeout { millis: 50 },
                    backoff_millis: 0,
                },
            ],
        };
        assert!(q.append(&entry));
        let back = read_quarantine(&path).unwrap();
        assert_eq!(back, vec![entry]);
        let _ = std::fs::remove_file(&path);
    }
}
