//! Engine throughput and stage-timing metrics.
//!
//! Workers record one [`RecordSample`] per record into a thread-local
//! [`MetricsSink`]; each sink folds into the run's shared
//! [`MetricsCollector`] once at drain (batch) or once per request
//! (service), and the engine folds the collector plus its own wall-clock
//! into a serializable [`EngineMetrics`] snapshot.

use cmr_core::{DegradationReport, MethodUsed};
use cmr_sync::{TrackedMutex, TrackedMutexGuard};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Number of log2 nanosecond buckets: bucket `i` counts durations `d` with
/// `floor(log2(d)) == i`, i.e. from 1 ns up past 2^39 ns (~9 minutes) —
/// wide enough for any single record.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log2-bucketed duration histogram (nanoseconds).
///
/// Fixed buckets keep merging trivially exact and serialization compact;
/// percentile estimates are bucket-resolution (within 2×), which is
/// plenty for spotting pathological records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurationHistogram {
    /// `buckets[i]` counts samples with `floor(log2(nanos)) == i`.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub total_nanos: u64,
    /// Largest single sample, in nanoseconds.
    pub max_nanos: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            total_nanos: 0,
            max_nanos: 0,
        }
    }
}

impl DurationHistogram {
    /// Records one duration.
    pub fn record(&mut self, nanos: u64) {
        let bucket = if nanos == 0 {
            0
        } else {
            (63 - nanos.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `0.0..=1.0`); 0 when empty. Bucket resolution: the true
    /// quantile is within a factor of 2 below the returned bound.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_nanos
    }
}

/// Per-stage histograms, keyed to the pipeline of Figure 2.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Record parsing: sectioning, sentence splitting.
    pub record_parse: DurationHistogram,
    /// Link-grammar parsing inside the numeric stage (cache misses only).
    pub link_parse: DurationHistogram,
    /// The whole numeric stage: tagging, number annotation, link parsing,
    /// association.
    pub numeric: DurationHistogram,
    /// The medical-term stage: POS patterns, normalization, ontology.
    pub terms: DurationHistogram,
    /// End-to-end per record (parse + numeric + terms).
    pub total: DurationHistogram,
}

impl StageMetrics {
    fn merge(&mut self, other: &StageMetrics) {
        self.record_parse.merge(&other.record_parse);
        self.link_parse.merge(&other.link_parse);
        self.numeric.merge(&other.numeric);
        self.terms.merge(&other.terms);
        self.total.merge(&other.total);
    }
}

/// Link-parser structure-cache counters, summed across workers.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ParseCacheMetrics {
    /// Sentences answered from a structure cache (local L1 or shared).
    pub hits: u64,
    /// The subset of `hits` served by the pool-wide sharded cache — a
    /// shape some *other* worker parsed first. `hits - shared_hits` is
    /// the contention-free L1 fast path.
    pub shared_hits: u64,
    /// Sentences that required a fresh parse.
    pub misses: u64,
}

impl ParseCacheMetrics {
    /// Hit ratio in `0.0..=1.0` (0 when no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// How numeric associations were made, summed across all records.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MethodCounts {
    /// Link-grammar graph distance (§3.1's novel approach).
    pub link_grammar: u64,
    /// Linguistic-pattern fallback.
    pub pattern: u64,
    /// The `{N}-year-old` dictation pattern.
    pub year_old: u64,
    /// Token-proximity baseline (ablations only).
    pub proximity: u64,
    /// Tier-3 raw-text salvage (degraded input only).
    pub salvage: u64,
}

impl MethodCounts {
    /// Bumps the counter for one association.
    pub fn count(&mut self, method: MethodUsed) {
        match method {
            MethodUsed::LinkGrammar => self.link_grammar += 1,
            MethodUsed::Pattern => self.pattern += 1,
            MethodUsed::YearOld => self.year_old += 1,
            MethodUsed::Proximity => self.proximity += 1,
            MethodUsed::Salvage => self.salvage += 1,
        }
    }

    fn merge(&mut self, other: &MethodCounts) {
        self.link_grammar += other.link_grammar;
        self.pattern += other.pattern;
        self.year_old += other.year_old;
        self.proximity += other.proximity;
        self.salvage += other.salvage;
    }
}

/// Degradation accounting summed across all successful records (see
/// [`cmr_core::DegradationReport`]): how many extracted values each tier
/// served, how many link parses failed on sentences that mattered, and how
/// many records needed the salvage tier at all.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DegradationTotals {
    /// Extracted values served by the link-grammar tier.
    pub link_grammar_fields: u64,
    /// Extracted values served by the pattern tier.
    pub pattern_fields: u64,
    /// Extracted values served by the tier-3 salvage scanner.
    pub salvage_fields: u64,
    /// Link-parse failures on sentences carrying an extraction opportunity.
    pub parse_failures: u64,
    /// Records whose report was marked degraded (≥1 salvaged field).
    pub degraded_records: u64,
}

impl DegradationTotals {
    /// Folds one record's report into the totals.
    pub fn add(&mut self, report: &DegradationReport) {
        self.link_grammar_fields += u64::from(report.tiers.link_grammar);
        self.pattern_fields += u64::from(report.tiers.pattern);
        self.salvage_fields += u64::from(report.tiers.salvage);
        self.parse_failures += u64::from(report.parse_failures.total());
        if report.degraded {
            self.degraded_records += 1;
        }
    }

    fn merge(&mut self, other: &DegradationTotals) {
        self.link_grammar_fields += other.link_grammar_fields;
        self.pattern_fields += other.pattern_fields;
        self.salvage_fields += other.salvage_fields;
        self.parse_failures += other.parse_failures;
        self.degraded_records += other.degraded_records;
    }
}

/// Request-latency histograms for the resident service (`cmr serve`).
///
/// Plain batch runs leave these empty; the service records one sample per
/// handled request (and one per NDJSON line inside batch requests), so
/// `/metrics` can report cumulative latency distributions next to the
/// engine's stage histograms. The vendored serde stores every integer as
/// an `i64`, so u64 counters above `i64::MAX` would not round-trip (the
/// PR5 manifest-hash bug); nanosecond latency sums stay far below that,
/// pinned by `service_latency_serialize_roundtrip` below.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceLatency {
    /// End-to-end handling latency of `POST /extract`, per request
    /// (request fully read → response fully written).
    pub extract: DurationHistogram,
    /// End-to-end handling latency of `POST /extract/batch`, per request.
    pub batch: DurationHistogram,
    /// Per-record extraction latency inside batch requests (one sample
    /// per NDJSON input line).
    pub batch_record: DurationHistogram,
}

impl ServiceLatency {
    /// Total requests observed across both endpoints.
    pub fn requests(&self) -> u64 {
        self.extract.count + self.batch.count
    }

    /// Merges another latency block into this one.
    pub fn merge(&mut self, other: &ServiceLatency) {
        self.extract.merge(&other.extract);
        self.batch.merge(&other.batch);
        self.batch_record.merge(&other.batch_record);
    }
}

/// Error counters by kind.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ErrorCounts {
    /// Records whose extraction panicked (caught; the batch survives).
    pub panics: u64,
    /// Records that exceeded the per-record budget.
    pub budget: u64,
    /// Records abandoned because `fail_fast` stopped the batch.
    pub aborted: u64,
    /// Records cancelled by the stuck-worker watchdog (wall-clock
    /// deadline exceeded mid-parse).
    pub timeouts: u64,
}

impl ErrorCounts {
    /// Total failed records.
    pub fn total(&self) -> u64 {
        self.panics + self.budget + self.aborted + self.timeouts
    }

    fn merge(&mut self, other: &ErrorCounts) {
        self.panics += other.panics;
        self.budget += other.budget;
        self.aborted += other.aborted;
        self.timeouts += other.timeouts;
    }
}

/// The serializable metrics snapshot an engine run returns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Records successfully extracted.
    pub records: u64,
    /// Failed records by kind.
    pub errors: ErrorCounts,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end batch wall time (feeder start to last result emitted).
    pub wall_nanos: u64,
    /// Successful records per wall-clock second.
    pub records_per_sec: f64,
    /// Per-stage wall-time histograms (per-record samples, all workers).
    pub stages: StageMetrics,
    /// Link-parser structure-cache counters.
    pub parse_cache: ParseCacheMetrics,
    /// Numeric association method counts.
    pub methods: MethodCounts,
    /// Degradation accounting (tier usage, parse failures) summed over
    /// successful records.
    pub degradation: DegradationTotals,
    /// Warning-severity findings from the startup asset lint (the run
    /// proceeds; `Error` findings fail the batch before it starts).
    pub lint_warnings: u64,
    /// Retry attempts beyond each record's first (the durable-run retry
    /// policy); counts attempts, not records.
    pub retries: u64,
    /// Records appended to the poison-quarantine file after exhausting
    /// their retry budget on a transient error.
    pub quarantined: u64,
    /// Request-latency histograms (resident service only; empty for
    /// batch runs).
    pub service: ServiceLatency,
    /// Total nanoseconds workers spent blocked waiting on the input
    /// channel, summed over workers (pool starvation signal).
    pub channel_wait_nanos: u64,
    /// Shared parse-cache stripe-lock acquisitions that found the stripe
    /// already held (see `SharedCacheStats::contention`).
    pub cache_shard_contention: u64,
    /// Peak number of out-of-order results parked in the consumer's
    /// reorder ring awaiting their predecessors.
    pub reorder_buffer_high_water: u64,
}

impl EngineMetrics {
    /// Finalizes a collector into a snapshot.
    pub(crate) fn from_collector(c: &MetricsCollector, jobs: usize, wall_nanos: u64) -> Self {
        let mut m = EngineMetrics {
            records: c.records,
            errors: c.errors,
            jobs,
            wall_nanos,
            records_per_sec: 0.0,
            stages: c.stages.clone(),
            parse_cache: c.parse_cache,
            methods: c.methods,
            degradation: c.degradation,
            lint_warnings: 0,
            retries: c.retries,
            quarantined: c.quarantined,
            service: c.service.clone(),
            channel_wait_nanos: 0,
            cache_shard_contention: 0,
            reorder_buffer_high_water: 0,
        };
        if wall_nanos > 0 {
            m.records_per_sec = m.records as f64 / (wall_nanos as f64 / 1e9);
        }
        m
    }

    /// Folds one replayed journal entry into the deterministic counters
    /// (`records`, `errors`, `methods`, `degradation`), so a resumed
    /// run's metrics cover the whole shard instead of just the
    /// post-resume remainder — which is what lets `cmr merge` report
    /// corpus totals identical to an uninterrupted run. The replayed
    /// method counts use the same source as the live path
    /// (`numeric_methods.values()`); timings and cache counters of
    /// replayed records died with the killed process and are not
    /// reconstructed.
    pub fn absorb_replayed(
        &mut self,
        output: &Result<cmr_core::ExtractedRecord, crate::EngineError>,
    ) {
        match output {
            Ok(record) => {
                self.records += 1;
                for &method in record.numeric_methods.values() {
                    self.methods.count(method);
                }
                self.degradation.add(&record.degradation);
            }
            Err(crate::EngineError::Panicked { .. }) => self.errors.panics += 1,
            Err(crate::EngineError::Budget { .. }) => self.errors.budget += 1,
            Err(crate::EngineError::Timeout { .. }) => self.errors.timeouts += 1,
            Err(crate::EngineError::Aborted) => self.errors.aborted += 1,
            // A lint failure aborts the whole run before any journal
            // entry is written; a replayed one still counts as a panic
            // bucket's sibling rather than vanishing.
            Err(crate::EngineError::Lint { .. }) => self.errors.panics += 1,
        }
        if self.wall_nanos > 0 {
            self.records_per_sec = self.records as f64 / (self.wall_nanos as f64 / 1e9);
        }
    }

    /// Merges another run's snapshot into this one — how `cmr merge`
    /// combines per-shard metrics into corpus totals.
    ///
    /// Counters and histograms sum exactly. `jobs` sums (total workers
    /// across shards), `wall_nanos` takes the max (shards run
    /// concurrently, so the slowest shard is the run's wall time) and
    /// `records_per_sec` is recomputed from the merged totals.
    /// `reorder_buffer_high_water` is a high-water mark and takes the
    /// max.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.records += other.records;
        self.errors.merge(&other.errors);
        self.jobs += other.jobs;
        self.wall_nanos = self.wall_nanos.max(other.wall_nanos);
        self.records_per_sec = if self.wall_nanos > 0 {
            self.records as f64 / (self.wall_nanos as f64 / 1e9)
        } else {
            0.0
        };
        self.stages.merge(&other.stages);
        self.parse_cache.hits += other.parse_cache.hits;
        self.parse_cache.shared_hits += other.parse_cache.shared_hits;
        self.parse_cache.misses += other.parse_cache.misses;
        self.methods.merge(&other.methods);
        self.degradation.merge(&other.degradation);
        self.lint_warnings += other.lint_warnings;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.service.merge(&other.service);
        self.channel_wait_nanos += other.channel_wait_nanos;
        self.cache_shard_contention += other.cache_shard_contention;
        self.reorder_buffer_high_water = self
            .reorder_buffer_high_water
            .max(other.reorder_buffer_high_water);
    }
}

/// One record's measurements, produced by a worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecordSample {
    /// Time spent parsing the raw text into a `Record`.
    pub record_parse_nanos: u64,
    /// Link-parse time within the numeric stage (from `ParserStats` delta).
    pub link_parse_nanos: u64,
    /// Numeric-stage time.
    pub numeric_nanos: u64,
    /// Term-stage time.
    pub terms_nanos: u64,
    /// End-to-end time for the record.
    pub total_nanos: u64,
    /// Structure-cache hits during this record.
    pub cache_hits: u64,
    /// The subset of `cache_hits` served by the pool-wide shared cache.
    pub shared_hits: u64,
    /// Structure-cache misses during this record.
    pub cache_misses: u64,
}

/// Accumulates worker measurements. One lives behind `Arc<Mutex<..>>` per
/// engine run, but workers never touch that lock per record: each worker
/// accumulates into a private collector inside a [`MetricsSink`] and the
/// sinks merge into the shared one at drain.
#[derive(Debug, Default)]
pub(crate) struct MetricsCollector {
    pub records: u64,
    pub errors: ErrorCounts,
    pub stages: StageMetrics,
    pub parse_cache: ParseCacheMetrics,
    pub methods: MethodCounts,
    pub degradation: DegradationTotals,
    pub retries: u64,
    pub quarantined: u64,
    pub service: ServiceLatency,
}

impl MetricsCollector {
    /// Records one successful record.
    pub fn record_ok(
        &mut self,
        sample: RecordSample,
        methods: &[MethodUsed],
        report: &DegradationReport,
    ) {
        self.records += 1;
        self.stages.record_parse.record(sample.record_parse_nanos);
        self.stages.link_parse.record(sample.link_parse_nanos);
        self.stages.numeric.record(sample.numeric_nanos);
        self.stages.terms.record(sample.terms_nanos);
        self.stages.total.record(sample.total_nanos);
        self.parse_cache.hits += sample.cache_hits;
        self.parse_cache.shared_hits += sample.shared_hits;
        self.parse_cache.misses += sample.cache_misses;
        for &m in methods {
            self.methods.count(m);
        }
        self.degradation.add(report);
    }

    /// Merges a sibling collector — the drain step of [`MetricsSink`].
    pub fn merge(&mut self, other: &MetricsCollector) {
        self.records += other.records;
        self.errors.merge(&other.errors);
        self.stages.merge(&other.stages);
        self.parse_cache.hits += other.parse_cache.hits;
        self.parse_cache.shared_hits += other.parse_cache.shared_hits;
        self.parse_cache.misses += other.parse_cache.misses;
        self.methods.merge(&other.methods);
        self.degradation.merge(&other.degradation);
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.service.merge(&other.service);
    }
}

/// Locks a shared metrics collector, recovering from poisoning: the
/// engine's whole point is that a panicking record must not take the
/// batch with it, and a worker that panicked *while holding* this lock
/// leaves only plain counters behind — every update is a field-wise add
/// with no invariant spanning the lock, so the data is safe to keep
/// using.
pub(crate) fn lock_collector(
    collector: &TrackedMutex<MetricsCollector>,
) -> TrackedMutexGuard<'_, MetricsCollector> {
    collector
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shared collector always lives under this ordering class.
pub(crate) const COLLECTOR_LOCK_CLASS: &str = "engine.metrics_collector";

/// A worker-local metrics accumulator in front of the run's shared
/// collector.
///
/// Per-record updates go to the private collector through [`with`] —
/// no lock, no atomic, no sharing. [`publish`] folds the accumulated
/// counters into the shared collector and resets the local one; dropping
/// the sink publishes any remainder, which is how batch workers merge
/// exactly once at drain (worker closures drop inside the pool scope,
/// before the engine reads the shared collector). Service workers call
/// [`publish`] at the end of each request instead, so `GET /metrics`
/// stays fresh while the per-request cost is still one lock, not one per
/// counter update.
///
/// [`with`]: MetricsSink::with
/// [`publish`]: MetricsSink::publish
#[derive(Debug)]
pub(crate) struct MetricsSink {
    local: std::cell::RefCell<MetricsCollector>,
    global: Arc<TrackedMutex<MetricsCollector>>,
}

impl MetricsSink {
    /// A sink draining into `global`.
    pub fn new(global: Arc<TrackedMutex<MetricsCollector>>) -> MetricsSink {
        MetricsSink {
            local: std::cell::RefCell::new(MetricsCollector::default()),
            global,
        }
    }

    /// Runs `f` against the worker-local collector.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsCollector) -> R) -> R {
        f(&mut self.local.borrow_mut())
    }

    /// Folds the local counters into the shared collector and resets the
    /// local ones.
    pub fn publish(&self) {
        let local = std::mem::take(&mut *self.local.borrow_mut());
        lock_collector(&self.global).merge(&local);
    }
}

impl Drop for MetricsSink {
    fn drop(&mut self) {
        self.publish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = DurationHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.max_nanos, 1024);
        assert_eq!(h.total_nanos, 1030);
        assert_eq!(h.mean_nanos(), 206);
    }

    #[test]
    fn histogram_merge_and_quantile() {
        let mut a = DurationHistogram::default();
        let mut b = DurationHistogram::default();
        for _ in 0..99 {
            a.record(100); // bucket 6, upper bound 128
        }
        b.record(1_000_000); // bucket 19
        a.merge(&b);
        assert_eq!(a.count, 100);
        assert_eq!(a.quantile_upper_bound(0.5), 128);
        assert!(a.quantile_upper_bound(1.0) >= 1_000_000);
        assert_eq!(DurationHistogram::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn histogram_huge_sample_clamps() {
        let mut h = DurationHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn cache_hit_ratio() {
        let m = ParseCacheMetrics {
            hits: 3,
            misses: 1,
            shared_hits: 1,
        };
        assert!((m.hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(ParseCacheMetrics::default().hit_ratio(), 0.0);
    }

    #[test]
    fn method_counts() {
        let mut m = MethodCounts::default();
        m.count(MethodUsed::LinkGrammar);
        m.count(MethodUsed::LinkGrammar);
        m.count(MethodUsed::Pattern);
        m.count(MethodUsed::YearOld);
        assert_eq!(m.link_grammar, 2);
        assert_eq!(m.pattern, 1);
        assert_eq!(m.year_old, 1);
        assert_eq!(m.proximity, 0);
    }

    #[test]
    fn metrics_serialize_roundtrip() {
        let mut c = MetricsCollector::default();
        c.record_ok(
            RecordSample {
                record_parse_nanos: 10,
                link_parse_nanos: 500,
                numeric_nanos: 900,
                terms_nanos: 90,
                total_nanos: 1000,
                cache_hits: 2,
                shared_hits: 1,
                cache_misses: 1,
            },
            &[MethodUsed::LinkGrammar, MethodUsed::Pattern],
            &DegradationReport {
                tiers: cmr_core::TierFieldCounts {
                    link_grammar: 1,
                    pattern: 1,
                    salvage: 1,
                },
                parse_failures: cmr_core::ParseFailureCounts {
                    no_linkage: 2,
                    ..Default::default()
                },
                salvaged_fields: vec!["pulse".to_string()],
                degraded: true,
            },
        );
        c.errors.panics = 1;
        c.errors.timeouts = 2;
        c.retries = 3;
        c.quarantined = 1;
        let mut m = EngineMetrics::from_collector(&c, 4, 2_000_000_000);
        m.channel_wait_nanos = 123_456_789;
        m.cache_shard_contention = 17;
        m.reorder_buffer_high_water = 42;
        assert_eq!(m.records, 1);
        assert_eq!(m.errors.total(), 3, "timeouts count toward the total");
        assert!((m.records_per_sec - 0.5).abs() < 1e-9);
        let json = serde_json::to_string(&m).expect("serializes");
        let back: EngineMetrics = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.records, 1);
        assert_eq!(back.channel_wait_nanos, 123_456_789);
        assert_eq!(back.cache_shard_contention, 17);
        assert_eq!(back.reorder_buffer_high_water, 42);
        assert_eq!(back.parse_cache.shared_hits, 1);
        assert_eq!(back.jobs, 4);
        assert_eq!(back.methods.link_grammar, 1);
        assert_eq!(back.stages.total.count, 1);
        assert_eq!(back.degradation.salvage_fields, 1);
        assert_eq!(back.degradation.parse_failures, 2);
        assert_eq!(back.degradation.degraded_records, 1);
        assert_eq!(back.degradation.link_grammar_fields, 1);
        assert_eq!(back.degradation.pattern_fields, 1);
        assert_eq!(back.errors.timeouts, 2);
        assert_eq!(back.errors.total(), 3);
        assert_eq!(back.retries, 3);
        assert_eq!(back.quarantined, 1);
    }

    /// Satellite pin for the PR5 u64-as-i64 serde pitfall: the vendored
    /// serde stores integers as `i64`, so the new service-latency buckets
    /// must round-trip with realistic-but-large nanosecond sums (values
    /// beyond `i64::MAX` cannot survive; latency counters never get there
    /// — even a century of nanoseconds fits in 62 bits).
    #[test]
    fn service_latency_serialize_roundtrip() {
        let mut c = MetricsCollector::default();
        c.service.extract.record(1_500_000); // 1.5 ms request
        c.service.extract.record(40_000_000_000); // pathological 40 s
        c.service.batch.record(250_000_000);
        c.service.batch_record.record(800_000);
        c.service.batch_record.record(1u64 << 62); // largest representable class
        let m = EngineMetrics::from_collector(&c, 2, 1_000_000_000);
        let json = serde_json::to_string(&m).expect("serializes");
        let back: EngineMetrics = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.service.extract.count, 2);
        assert_eq!(back.service.extract.total_nanos, 40_001_500_000);
        assert_eq!(back.service.extract.max_nanos, 40_000_000_000);
        assert_eq!(back.service.batch.count, 1);
        assert_eq!(back.service.batch_record.count, 2);
        assert_eq!(back.service.batch_record.max_nanos, 1u64 << 62);
        assert_eq!(
            back.service.batch_record.buckets,
            m.service.batch_record.buckets
        );
        assert_eq!(back.service.requests(), 3);
        // An empty service block (every batch run) round-trips too.
        let empty = EngineMetrics::default();
        let json = serde_json::to_string(&empty).expect("serializes");
        let back: EngineMetrics = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.service.requests(), 0);
    }

    #[test]
    fn service_latency_merge() {
        let mut a = ServiceLatency::default();
        a.extract.record(100);
        let mut b = ServiceLatency::default();
        b.extract.record(200);
        b.batch.record(300);
        a.merge(&b);
        assert_eq!(a.extract.count, 2);
        assert_eq!(a.batch.count, 1);
        assert_eq!(a.requests(), 3);
    }

    #[test]
    fn method_counts_include_salvage() {
        let mut m = MethodCounts::default();
        m.count(MethodUsed::Salvage);
        assert_eq!(m.salvage, 1);
    }

    #[test]
    fn sink_publishes_on_drop_and_on_demand() {
        let global = Arc::new(TrackedMutex::new(
            COLLECTOR_LOCK_CLASS,
            MetricsCollector::default(),
        ));
        {
            let sink = MetricsSink::new(Arc::clone(&global));
            sink.with(|c| c.retries += 2);
            assert_eq!(
                lock_collector(&global).retries,
                0,
                "local counts must not leak before publish"
            );
            sink.publish();
            assert_eq!(lock_collector(&global).retries, 2);
            // Publish resets the local side: no double counting.
            sink.publish();
            assert_eq!(lock_collector(&global).retries, 2);
            sink.with(|c| c.errors.panics += 1);
        } // drop publishes the remainder
        let c = lock_collector(&global);
        assert_eq!(c.retries, 2);
        assert_eq!(c.errors.panics, 1);
    }

    #[test]
    fn engine_metrics_merge_sums_counters_and_maxes_wall() {
        let mut a = EngineMetrics {
            records: 10,
            jobs: 2,
            wall_nanos: 2_000_000_000,
            ..Default::default()
        };
        a.methods.pattern = 3;
        a.parse_cache.hits = 5;
        a.stages.total.record(100);
        let mut b = EngineMetrics {
            records: 30,
            jobs: 4,
            wall_nanos: 4_000_000_000,
            quarantined: 1,
            reorder_buffer_high_water: 7,
            ..Default::default()
        };
        b.methods.pattern = 1;
        b.parse_cache.misses = 2;
        b.stages.total.record(200);
        a.merge(&b);
        assert_eq!(a.records, 40);
        assert_eq!(a.jobs, 6);
        assert_eq!(a.wall_nanos, 4_000_000_000, "slowest shard wins");
        assert!((a.records_per_sec - 10.0).abs() < 1e-9);
        assert_eq!(a.methods.pattern, 4);
        assert_eq!(a.parse_cache.hits, 5);
        assert_eq!(a.parse_cache.misses, 2);
        assert_eq!(a.stages.total.count, 2);
        assert_eq!(a.quarantined, 1);
        assert_eq!(a.reorder_buffer_high_water, 7);
    }

    #[test]
    fn absorb_replayed_matches_live_counting() {
        use crate::EngineError;
        let mut record = cmr_core::ExtractedRecord::default();
        record
            .numeric_methods
            .insert("pulse".to_string(), MethodUsed::LinkGrammar);
        record
            .numeric_methods
            .insert("weight".to_string(), MethodUsed::Pattern);
        record.degradation.tiers.link_grammar = 1;
        record.degradation.tiers.pattern = 1;
        let mut m = EngineMetrics::default();
        m.absorb_replayed(&Ok(record));
        m.absorb_replayed(&Err(EngineError::Budget { sentences_done: 3 }));
        m.absorb_replayed(&Err(EngineError::Timeout { millis: 10 }));
        assert_eq!(m.records, 1);
        assert_eq!(m.methods.link_grammar, 1);
        assert_eq!(m.methods.pattern, 1);
        assert_eq!(m.degradation.link_grammar_fields, 1);
        assert_eq!(m.degradation.pattern_fields, 1);
        assert_eq!(m.errors.budget, 1);
        assert_eq!(m.errors.timeouts, 1);
        assert_eq!(m.stages.total.count, 0, "replayed records carry no timings");
    }

    #[test]
    fn degradation_totals_merge() {
        let mut a = DegradationTotals {
            salvage_fields: 1,
            degraded_records: 1,
            ..Default::default()
        };
        a.merge(&DegradationTotals {
            salvage_fields: 2,
            parse_failures: 3,
            ..Default::default()
        });
        assert_eq!(a.salvage_fields, 3);
        assert_eq!(a.parse_failures, 3);
        assert_eq!(a.degraded_records, 1);
    }
}
