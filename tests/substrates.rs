//! Cross-substrate integration: the guarantees each layer needs from the
//! one below it, checked on realistic corpus data rather than unit
//! fixtures.

use cmr::postag::PosTagger;
use cmr::prelude::*;
use cmr_text::TokenKind;

/// The parser must handle the generated corpus's declarative sentences at a
/// high rate — the numeric extractor's primary path depends on it.
#[test]
fn parse_rate_on_vitals_sentences() {
    let corpus = CorpusBuilder::new().records(20).seed(31).build();
    let parser = LinkParser::new();
    let mut parsed = 0;
    let mut total = 0;
    for rec in &corpus.records {
        let parsed_rec = cmr::text::Record::parse(&rec.text);
        let vitals = parsed_rec.section("Vitals").expect("vitals present");
        for s in vitals.sentences() {
            total += 1;
            if parser.parse_sentence(s.text(&vitals.body)).is_some() {
                parsed += 1;
            }
        }
    }
    assert!(total >= 20);
    assert!(
        parsed * 10 >= total * 9,
        "house-style vitals must parse: {parsed}/{total}"
    );
}

/// Every number the tokenizer marks must survive tagging as CD — the
/// numeric extractor's inventory comes from this chain.
#[test]
fn number_tokens_survive_tagging() {
    let corpus = CorpusBuilder::new().records(10).seed(32).build();
    let tagger = PosTagger::new();
    for rec in &corpus.records {
        let toks = tokenize(&rec.text);
        let tagged = tagger.tag(&toks);
        for (t, g) in toks.iter().zip(&tagged) {
            if matches!(t.kind, TokenKind::Number(_)) {
                assert_eq!(g.tag, cmr::postag::Tag::CD, "{}", t.text);
            }
        }
    }
}

/// Gold history terms must be resolvable by the full ontology after
/// normalization — otherwise the Table 1 gold partition is meaningless.
#[test]
fn gold_terms_resolve_after_normalization() {
    let corpus = CorpusBuilder::new().records(25).seed(33).build();
    let onto = Ontology::full();
    for rec in &corpus.records {
        for term in rec.medical_history.iter().chain(&rec.surgical_history) {
            let c = onto
                .lookup(term)
                .unwrap_or_else(|| panic!("gold term unresolvable: {term}"));
            assert_eq!(c.preferred, term, "gold uses preferred names");
        }
    }
}

/// `lemma_any` must be idempotent over every lemma the tagger emits.
/// (Cross-class divergence is legitimate — "known" is its own adjective
/// lemma but reduces to "know" as a verb — so the invariant is idempotence
/// of the class-free reduction, not cross-class equality.)
#[test]
fn tagger_lemmas_reduce_to_fixed_points() {
    let corpus = CorpusBuilder::new().records(5).seed(34).build();
    let tagger = PosTagger::new();
    let lem = Lemmatizer::new();
    for rec in &corpus.records {
        for t in tagger.tag(&tokenize(&rec.text)) {
            if t.token.kind.is_word() {
                let once = lem.lemma_any(t.lemma.as_str());
                let twice = lem.lemma_any(&once);
                assert_eq!(
                    once, twice,
                    "{} → {} → {} → {}",
                    t.token.text, t.lemma, once, twice
                );
            }
        }
    }
}

/// Corpus generation, extraction and evaluation must be jointly
/// deterministic: the whole chain re-run gives byte-identical JSON.
#[test]
fn whole_chain_deterministic() {
    let run = || {
        let corpus = CorpusBuilder::new().records(6).seed(35).build();
        let pipeline = Pipeline::with_default_schema();
        corpus
            .records
            .iter()
            .map(|r| serde_json::to_string(&pipeline.extract(&r.text)).expect("serializes"))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Sections the schema routes to must exist in every generated record; a
/// renamed template header would silently zero the experiments.
#[test]
fn schema_sections_exist_in_corpus() {
    let corpus = CorpusBuilder::new().records(8).seed(36).build();
    let schema = Schema::paper();
    for rec in &corpus.records {
        let parsed = cmr::text::Record::parse(&rec.text);
        for spec in &schema.numeric {
            for sec in &spec.sections {
                assert!(
                    parsed.section(sec).is_some(),
                    "numeric section {sec} missing in patient {}",
                    rec.patient_id
                );
            }
        }
        for field in schema
            .terms
            .iter()
            .map(|t| &t.sections)
            .chain(schema.categorical.iter().map(|c| &c.sections))
        {
            for sec in field {
                assert!(parsed.section(sec).is_some(), "section {sec} missing");
            }
        }
    }
}
