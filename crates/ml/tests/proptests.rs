//! Property tests for the ID3 implementation.

use cmr_ml::{entropy, CrossValidation, DatasetBuilder, Id3Params, Id3Tree};
use proptest::prelude::*;

proptest! {
    /// Entropy is within [0, log2(k)] and zero for pure distributions.
    #[test]
    fn entropy_bounds(counts in prop::collection::vec(0usize..50, 1..6)) {
        let h = entropy(&counts);
        prop_assert!(h >= 0.0);
        let k = counts.iter().filter(|&&c| c > 0).count().max(1);
        prop_assert!(h <= (k as f64).log2() + 1e-9, "h={h} k={k}");
    }

    /// Training always fits pure-by-construction datasets perfectly when
    /// each class has a dedicated marker feature.
    #[test]
    fn separable_data_fits(n in 1usize..15) {
        let mut b = DatasetBuilder::new();
        for i in 0..n {
            b.add(&["alpha".into(), format!("x{i}")], "a");
            b.add(&["beta".into(), format!("y{i}")], "b");
        }
        let d = b.build();
        let t = Id3Tree::train(&d, Id3Params::default());
        for inst in &d.instances {
            prop_assert_eq!(t.predict(&inst.features), inst.label);
        }
    }

    /// Prediction is total for any feature vector length.
    #[test]
    fn predict_total(len in 0usize..40) {
        let mut b = DatasetBuilder::new();
        b.add(&["p".into()], "x");
        b.add(&["q".into()], "y");
        b.add(&["p".into(), "q".into()], "x");
        let d = b.build();
        let t = Id3Tree::train(&d, Id3Params::default());
        let fv = vec![true; len];
        let label = t.predict(&fv);
        prop_assert!(label < d.n_labels());
    }

    /// CV accuracies are valid probabilities and deterministic per seed.
    #[test]
    fn cv_accuracy_in_unit_interval(seed in 0u64..1000) {
        let mut b = DatasetBuilder::new();
        for i in 0..20 {
            b.add(&[format!("f{}", i % 5)], if i % 3 == 0 { "a" } else { "b" });
        }
        let d = b.build();
        let cv = CrossValidation { seed, repeats: 2, ..Default::default() };
        let r = cv.run(&d);
        for a in &r.accuracy_per_repeat {
            prop_assert!((0.0..=1.0).contains(a));
        }
        let r2 = cv.run(&d);
        prop_assert_eq!(r.accuracy_per_repeat, r2.accuracy_per_repeat);
    }
}
