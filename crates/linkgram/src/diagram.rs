//! ASCII linkage diagrams in the style of the original Link Grammar parser
//! (the paper's Figure 1).
//!
//! ```text
//!     +-------Ss------+---O---+
//!     +--AN--+        |       |
//!     |      |        |       |
//! Blood  pressure    is    144/90
//! ```

use crate::linkage::Linkage;

impl Linkage {
    /// Renders the linkage as an ASCII diagram. Words sit on the bottom
    /// line; each link is drawn as `+--LABEL--+` at a height one above the
    /// tallest link nested inside it.
    pub fn diagram(&self) -> String {
        if self.links.is_empty() {
            return self.words.join("  ");
        }
        // Column layout: center of each word.
        let mut starts = Vec::with_capacity(self.words.len());
        let mut col = 0usize;
        for w in &self.words {
            starts.push(col);
            col += w.chars().count() + 2;
        }
        let total_width = col.saturating_sub(2);
        let center = |i: usize| starts[i] + self.words[i].chars().count() / 2;

        // Height: 1 + max height of links strictly inside this one.
        let mut order: Vec<usize> = (0..self.links.len()).collect();
        order.sort_by_key(|&i| self.links[i].right - self.links[i].left);
        let mut heights = vec![0usize; self.links.len()];
        for &i in &order {
            let (a, b) = (self.links[i].left, self.links[i].right);
            let mut h = 1;
            for (j, l) in self.links.iter().enumerate() {
                if j != i && a <= l.left && l.right <= b && (l.left, l.right) != (a, b) {
                    h = h.max(heights[j] + 1);
                }
            }
            // Same-span links (rare) stack too.
            for (j, l) in self.links.iter().enumerate() {
                if j < i && (l.left, l.right) == (a, b) {
                    h = h.max(heights[j] + 1);
                }
            }
            heights[i] = h;
        }
        let max_h = heights.iter().copied().max().unwrap_or(1);

        // Canvas rows: max_h link rows + 1 pillar row + 1 word row.
        let mut canvas = vec![vec![' '; total_width + 2]; max_h + 1];
        for (i, link) in self.links.iter().enumerate() {
            let row = max_h - heights[i];
            let (ca, cb) = (center(link.left), center(link.right));
            canvas[row][ca] = '+';
            canvas[row][cb] = '+';
            for cell in canvas[row].iter_mut().take(cb).skip(ca + 1) {
                *cell = '-';
            }
            // Label in the middle of the dashes.
            let label: Vec<char> = link.label.chars().collect();
            if cb > ca + label.len() + 1 {
                let lstart = ca + 1 + (cb - ca - 1 - label.len()) / 2;
                for (k, ch) in label.iter().enumerate() {
                    canvas[row][lstart + k] = *ch;
                }
            }
            // Pillars from just below the link down to the word row.
            for r in canvas.iter_mut().take(max_h + 1).skip(row + 1) {
                for c in [ca, cb] {
                    if r[c] == ' ' {
                        r[c] = '|';
                    }
                }
            }
        }

        let mut out = String::new();
        for row in canvas {
            let line: String = row.into_iter().collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        // Word row.
        let mut word_row = String::new();
        for (i, w) in self.words.iter().enumerate() {
            while word_row.chars().count() < starts[i] {
                word_row.push(' ');
            }
            word_row.push_str(w);
        }
        out.push_str(&word_row);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::linkage::{Link, Linkage};

    fn sample() -> Linkage {
        Linkage {
            words: vec![
                "LEFT-WALL".into(),
                "Blood".into(),
                "pressure".into(),
                "is".into(),
                "144/90".into(),
            ],
            token_map: vec![None, Some(0), Some(1), Some(2), Some(3)],
            links: std::sync::Arc::new(vec![
                Link {
                    left: 0,
                    right: 2,
                    label: "Wd".into(),
                },
                Link {
                    left: 1,
                    right: 2,
                    label: "AN".into(),
                },
                Link {
                    left: 2,
                    right: 3,
                    label: "Ss".into(),
                },
                Link {
                    left: 3,
                    right: 4,
                    label: "O".into(),
                },
            ]),
            cost: 0.0,
        }
    }

    #[test]
    fn contains_all_words_and_labels() {
        let d = sample().diagram();
        for w in ["LEFT-WALL", "Blood", "pressure", "is", "144/90"] {
            assert!(d.contains(w), "{d}");
        }
        for l in ["Wd", "AN", "Ss", "O"] {
            assert!(d.contains(l), "label {l} missing in\n{d}");
        }
    }

    #[test]
    fn has_corners_and_pillars() {
        let d = sample().diagram();
        assert!(d.contains('+'));
        assert!(d.contains('|'));
        assert!(d.contains('-'));
    }

    #[test]
    fn empty_linkage_is_just_words() {
        let l = Linkage {
            words: vec!["a".into(), "b".into()],
            token_map: vec![Some(0), Some(1)],
            links: std::sync::Arc::new(vec![]),
            cost: 0.0,
        };
        assert_eq!(l.diagram(), "a  b");
    }

    #[test]
    fn rows_do_not_panic_on_long_labels() {
        let l = Linkage {
            words: vec!["a".into(), "b".into()],
            token_map: vec![Some(0), Some(1)],
            links: std::sync::Arc::new(vec![Link {
                left: 0,
                right: 1,
                label: "VERYLONGLABEL".into(),
            }]),
            cost: 0.0,
        };
        let d = l.diagram();
        assert!(d.contains('+'));
    }
}
