//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p cmr-bench --bin repro --release -- all
//! cargo run -p cmr-bench --bin repro --release -- table1
//! ```

use cmr_bench::*;
use cmr_core::{AssociationMethod, FeatureOptions};
use cmr_eval::{pct, Table};
use cmr_ontology::OntologyProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "numeric" => numeric(),
        "smoking" => smoking(),
        "table1" => table1(),
        "figure1" => figure1(),
        "alcohol" => alcohol(),
        "categorical" => categorical(),
        "ablation-classifier" => ablation_classifier(),
        "ablation-patterns" => ablation_patterns(),
        "knowledge" => knowledge(),
        "negation" => negation(),
        "ablation-assoc" => ablation_assoc(),
        "ablation-features" => ablation_features(),
        "ablation-ontology" => ablation_ontology(),
        "style-sweep" => style_sweep(),
        "all" => {
            figure1();
            numeric();
            smoking();
            table1();
            alcohol();
            categorical();
            ablation_classifier();
            ablation_patterns();
            ablation_assoc();
            ablation_features();
            ablation_ontology();
            style_sweep();
            negation();
            knowledge();
        }
        other => {
            errln!("unknown experiment `{other}`");
            errln!(
                "experiments: numeric smoking table1 figure1 alcohol categorical \
                 ablation-classifier ablation-patterns ablation-assoc \
                 ablation-features ablation-ontology style-sweep negation knowledge all"
            );
            std::process::exit(2);
        }
    }
}

fn heading(title: &str, paper: &str) {
    outln!("\n======================================================================");
    outln!("{title}");
    outln!("paper reports: {paper}");
    outln!("======================================================================");
}

/// E1 — §5 prose: 100% precision/recall on all eight numeric attributes.
fn numeric() {
    heading(
        "E1: numeric attributes (50 records, consistent dictation style)",
        "precision = recall = 100% on all 8 numeric attributes",
    );
    let corpus = paper_corpus();
    let report = run_numeric(&corpus, AssociationMethod::LinkWithFallback);
    let mut t = Table::new(vec![
        "Attribute",
        "Precision",
        "Recall",
        "Extracted",
        "Gold",
    ]);
    for (attr, pr) in &report.rows {
        t.row(vec![
            attr.clone(),
            pct(pr.precision()),
            pct(pr.recall()),
            pr.extracted().to_string(),
            pr.gold_total().to_string(),
        ]);
    }
    outln!("{}", t.render());
    let mut m = Table::new(vec!["Association mechanism", "Count"]);
    for (name, count) in &report.by_method {
        m.row(vec![name.clone(), count.to_string()]);
    }
    outln!("{}", m.render());
}

/// E2 — §5 prose: smoking ID3, 5-fold CV × 10, ≈92.2%, 4–7 features.
fn smoking() {
    heading(
        "E2: smoking-status ID3 (45 cases: 28 never / 12 current / 5 former)",
        "average precision (= recall) 92.2%; 4-7 features in the tree",
    );
    let corpus = paper_corpus();
    let result = run_smoking(&corpus, FeatureOptions::paper_smoking());
    outln!(
        "5-fold cross validation x 10 runs: mean accuracy {} (std {:.1} pts)",
        pct(result.mean_accuracy()),
        result.std_accuracy() * 100.0
    );
    let (lo, hi) = result.feature_count_range();
    outln!("features used per fold-tree: {lo} to {hi}\n");
    let mut t = Table::new(vec!["truth \\ predicted", "never", "former", "current"]);
    for (i, label) in result.label_names.iter().enumerate() {
        let idx = |name: &str| result.label_names.iter().position(|l| l == name);
        let cell = |j: Option<usize>| j.map(|j| result.confusion[i][j]).unwrap_or(0).to_string();
        t.row(vec![
            label.clone(),
            cell(idx("never")),
            cell(idx("former")),
            cell(idx("current")),
        ]);
    }
    outln!("pooled confusion matrix over 10 runs:\n{}", t.render());
}

/// T1 — Table 1: medical term extraction, paper-profile ontology.
fn table1() {
    heading(
        "T1 (Table 1): medical term extraction",
        "PMH-pre 96.7/96.7, PMH-other 76.1/86.4, PSH-pre 77.8/35.0, PSH-other 62.0/75.0 (%P/%R)",
    );
    let corpus = paper_corpus();
    for profile in [OntologyProfile::Paper, OntologyProfile::Full] {
        let report = run_table1(&corpus, profile);
        let mut t = Table::new(vec![
            "Attribute Name",
            "Precision",
            "95% CI",
            "Recall",
            "95% CI",
        ]);
        for row in &report.rows {
            let ci = |m| {
                let i = row.score.bootstrap_ci(m, 1000, 2005);
                format!("[{}, {}]", pct(i.lo), pct(i.hi))
            };
            t.row(vec![
                row.attribute.to_string(),
                pct(row.score.precision()),
                ci(cmr_eval::Metric::Precision),
                pct(row.score.recall()),
                ci(cmr_eval::Metric::Recall),
            ]);
        }
        outln!("ontology profile: {profile:?}\n{}", t.render());
    }
    outln!(
        "The Paper profile reproduces the paper's failure modes (missing surgical\n\
         synonyms; incomplete vocabulary); the Full profile shows the improvement\n\
         the paper's conclusion predicts from 'choosing an appropriate medical database'."
    );
}

/// F1 — Figure 1: the linkage diagram.
fn figure1() {
    heading(
        "F1 (Figure 1): linkage diagram",
        "4 links for the example clause; O link between 'is' and '144/90'",
    );
    // `write!` (not `writeln!`): the rendered figure ends with its own
    // newline, and a closed pipe must end the output quietly.
    {
        use std::io::Write as _;
        let _ = write!(std::io::stdout(), "{}", run_figure1());
    }
}

/// X1 — §3.3 extension: numeric boolean features for alcohol use.
fn alcohol() {
    heading(
        "X1: alcohol-use classification with numeric boolean features",
        "proposed as future work: word features alone perform poorly on numeric classes",
    );
    let corpus = paper_corpus();
    let (without, with) = run_alcohol(&corpus);
    let mut t = Table::new(vec!["Feature set", "Mean accuracy", "Features/fold"]);
    let fmt_range = |r: (usize, usize)| format!("{}-{}", r.0, r.1);
    t.row(vec![
        "words only (paper's current system)".to_string(),
        pct(without.mean_accuracy()),
        fmt_range(without.feature_count_range()),
    ]);
    t.row(vec![
        "words + numeric boolean (threshold 2)".to_string(),
        pct(with.mean_accuracy()),
        fmt_range(with.feature_count_range()),
    ]);
    outln!("{}", t.render());
}

/// X2 — the categorical fields the paper left incomplete.
fn categorical() {
    heading(
        "X2: remaining categorical attributes (paper: 'we have not completed \
         classification of all categorical fields')",
        "twelve categorical attributes required, six binary; only smoking was finished",
    );
    let corpus = paper_corpus();
    let mut t = Table::new(vec!["Field", "Cases", "Mean accuracy", "Features/fold"]);
    for (name, result, n) in run_remaining_categorical(&corpus) {
        let (lo, hi) = result.feature_count_range();
        t.row(vec![
            name.to_string(),
            n.to_string(),
            pct(result.mean_accuracy()),
            format!("{lo}-{hi}"),
        ]);
    }
    outln!("{}", t.render());
}

/// A5 — ablation: classifier choice (the paper's parsimony claim for ID3).
fn ablation_classifier() {
    heading(
        "A5: classifier ablation (smoking)",
        "§3.3: ID3 'is supposed to use less features than other decision tree algorithms'",
    );
    let corpus = paper_corpus();
    let mut t = Table::new(vec!["Classifier", "Mean accuracy", "Features/fold"]);
    for (name, acc, range) in run_ablation_classifier(&corpus) {
        t.row(vec![
            name.to_string(),
            pct(acc),
            range
                .map(|(lo, hi)| format!("{lo}-{hi}"))
                .unwrap_or_else(|| "all".to_string()),
        ]);
    }
    outln!("{}", t.render());
}

/// A6 — ablation: term pattern inventory.
fn ablation_patterns() {
    heading(
        "A6: POS pattern inventory ablation (full ontology)",
        "§3.2's four patterns top out at three words; 'chronic obstructive pulmonary \
         disease' is structurally unreachable",
    );
    let corpus = paper_corpus();
    let mut t = Table::new(vec![
        "Attribute",
        "Paper patterns P/R",
        "Extended patterns P/R",
    ]);
    let paper = run_table1_with(&corpus, OntologyProfile::Full, cmr_core::PatternSet::Paper);
    let ext = run_table1_with(
        &corpus,
        OntologyProfile::Full,
        cmr_core::PatternSet::Extended,
    );
    for i in 0..paper.rows.len() {
        let cell = |r: &Table1Report| {
            format!(
                "{}/{}",
                pct(r.rows[i].score.precision()),
                pct(r.rows[i].score.recall())
            )
        };
        t.row(vec![
            paper.rows[i].attribute.to_string(),
            cell(&paper),
            cell(&ext),
        ]);
    }
    outln!("{}", t.render());
}

/// A1 — ablation: association method × dictation style.
fn ablation_assoc() {
    heading(
        "A1: feature-number association method ablation",
        "motivates §3.1: patterns have 'generalization problems'; link grammar generalizes",
    );
    let styles = [0.0, 0.5, 1.0];
    let report = run_ablation_assoc(&styles, 2005);
    let mut t = Table::new(vec!["Method", "style=0.0", "style=0.5", "style=1.0"]);
    for name in ["link+fallback", "link-only", "pattern-only", "proximity"] {
        let cell = |s: f64| {
            report
                .cells
                .iter()
                .find(|(st, n, _)| *st == s && *n == name)
                .map(|(_, _, r)| pct(*r))
                .unwrap_or_default()
        };
        t.row(vec![name.to_string(), cell(0.0), cell(0.5), cell(1.0)]);
    }
    outln!(
        "numeric micro-recall by association method:\n{}",
        t.render()
    );
}

/// A2 — ablation: feature-extraction options for smoking.
fn ablation_features() {
    heading(
        "A2: feature-extraction option ablation (smoking)",
        "§3.3's four user options; the paper chose all-POS + all-constituents + lemma",
    );
    let corpus = paper_corpus();
    let mut t = Table::new(vec!["Options", "Mean accuracy", "Features/fold"]);
    for (name, options) in feature_option_variants() {
        let r = run_smoking(&corpus, options);
        let (lo, hi) = r.feature_count_range();
        t.row(vec![
            name.to_string(),
            pct(r.mean_accuracy()),
            format!("{lo}-{hi}"),
        ]);
    }
    outln!("{}", t.render());
}

/// A4 — ablation: ontology completeness vs Table 1 scores.
fn ablation_ontology() {
    heading(
        "A4: ontology completeness ablation",
        "§5: errors 'mainly caused by the incompleteness of domain ontology'",
    );
    let corpus = paper_corpus();
    let mut t = Table::new(vec!["Attribute", "Degraded P/R", "Paper P/R", "Full P/R"]);
    let reports: Vec<_> = [
        OntologyProfile::Degraded,
        OntologyProfile::Paper,
        OntologyProfile::Full,
    ]
    .iter()
    .map(|p| run_table1(&corpus, *p))
    .collect();
    for i in 0..reports[0].rows.len() {
        let cell = |r: &Table1Report| {
            format!(
                "{}/{}",
                pct(r.rows[i].score.precision()),
                pct(r.rows[i].score.recall())
            )
        };
        t.row(vec![
            reports[0].rows[i].attribute.to_string(),
            cell(&reports[0]),
            cell(&reports[1]),
            cell(&reports[2]),
        ]);
    }
    outln!("{}", t.render());
}

/// X3 — negation handling extension.
fn negation() {
    heading(
        "X3: negation filtering (extension the paper lacks)",
        "the paper's extractor reports terms the note rules out ('Negative for breast cancer')",
    );
    let corpus = paper_corpus();
    let (without, with) = run_negation(&corpus);
    let mut t = Table::new(vec![
        "Configuration",
        "Precision",
        "Recall",
        "False positives",
    ]);
    for (name, pr) in [
        ("paper (no negation handling)", &without),
        ("with NegEx-style filter", &with),
    ] {
        t.row(vec![
            name.to_string(),
            pct(pr.precision()),
            pct(pr.recall()),
            pr.false_positives.to_string(),
        ]);
    }
    outln!(
        "task: detect 'family history of breast cancer' from the Family History\n\
         section by term presence (gold = the corpus's binary flag):\n\n{}",
        t.render()
    );
}

/// K1 — information → knowledge: cohort mining over extracted records.
fn knowledge() {
    heading(
        "K1: cohort knowledge (the paper's title and §1 motivation)",
        "'the ability to then detect small variations, which may pinpoint important factors'",
    );
    let corpus = cmr_corpus::CorpusBuilder::new()
        .records(200)
        .seed(11)
        .build();
    outln!(
        "The corpus plants one real factor: current smokers carry COPD at ~8x the\n\
         base rate. COPD's preferred name is FOUR words — beyond the paper's\n\
         three-word patterns — so whether the knowledge layer can see the factor\n\
         depends on the extraction layer's pattern inventory (ablation A6):\n"
    );
    for (label, patterns) in [
        (
            "paper patterns (4-word terms invisible)",
            cmr_core::PatternSet::Paper,
        ),
        ("extended patterns", cmr_core::PatternSet::Extended),
    ] {
        let (rules, findings) = run_knowledge_with(&corpus, patterns);
        outln!("--- {label} ---");
        outln!("top association rules into/out of smoking=current:");
        let mut shown = 0;
        for rule in &rules {
            if rule.antecedent_value == "current" || rule.consequent_value == "current" {
                outln!("  {rule}");
                shown += 1;
                if shown >= 5 {
                    break;
                }
            }
        }
        if shown == 0 {
            outln!("  (none pass thresholds)");
        }
        let copd: Vec<&String> = findings
            .iter()
            .filter(|f| f.contains("pulmonary"))
            .collect();
        match copd.first() {
            Some(f) => outln!("planted factor FOUND: {f}"),
            None => outln!("planted factor NOT FOUND (COPD never extracted)"),
        }
        outln!();
    }
}

/// A3 — the style sweep behind the paper's degradation conjecture.
fn style_sweep() {
    heading(
        "A3: dictation-style sweep",
        "§5/§6 conjecture: 'if the writing style is full of variants, performance may be degraded'",
    );
    let styles = [0.0, 0.25, 0.5, 0.75, 1.0];
    let report = run_style_sweep(&styles, 2005);
    let mut t = Table::new(vec![
        "Style variation",
        "Numeric recall",
        "Smoking accuracy",
    ]);
    for (style, numeric, smoking) in &report.rows {
        t.row(vec![format!("{style:.2}"), pct(*numeric), pct(*smoking)]);
    }
    outln!("{}", t.render());
}
