//! End-to-end integration: corpus → pipeline → structured records.

use cmr::prelude::*;
use cmr_text::NumberValue;

#[test]
fn appendix_record_extracts_fully() {
    let pipeline = Pipeline::with_default_schema();
    let out = pipeline.extract(cmr::corpus::APPENDIX_RECORD);
    assert_eq!(
        out.numeric("blood_pressure"),
        Some(NumberValue::Ratio(142, 78))
    );
    assert_eq!(out.numeric("pulse"), Some(NumberValue::Int(96)));
    assert_eq!(out.numeric("weight"), Some(NumberValue::Int(211)));
    assert_eq!(out.numeric("menarche_age"), Some(NumberValue::Int(10)));
    assert_eq!(out.numeric("gravida"), Some(NumberValue::Int(4)));
    assert_eq!(out.numeric("para"), Some(NumberValue::Int(3)));
    assert_eq!(out.numeric("first_birth_age"), Some(NumberValue::Int(18)));
    assert_eq!(out.numeric("age"), Some(NumberValue::Int(50)));
    assert!(out.predefined_medical.contains(&"hypertension".to_string()));
    assert!(out.other_surgical.contains(&"laminectomy".to_string()));
}

#[test]
fn generated_records_extract_perfectly_at_house_style() {
    // The paper's E1 claim on a small slice: consistent style → 100%.
    let corpus = CorpusBuilder::new().records(8).seed(99).build();
    let pipeline = Pipeline::with_default_schema();
    for rec in &corpus.records {
        let out = pipeline.extract(&rec.text);
        assert_eq!(
            out.numeric("blood_pressure"),
            Some(NumberValue::Ratio(
                rec.blood_pressure.0,
                rec.blood_pressure.1
            )),
            "patient {}",
            rec.patient_id
        );
        assert_eq!(out.numeric("pulse"), Some(NumberValue::Int(rec.pulse)));
        assert_eq!(out.numeric("weight"), Some(NumberValue::Int(rec.weight)));
        assert_eq!(
            out.numeric("menarche_age"),
            Some(NumberValue::Int(rec.menarche_age))
        );
        assert_eq!(out.numeric("gravida"), Some(NumberValue::Int(rec.gravida)));
        assert_eq!(out.numeric("para"), Some(NumberValue::Int(rec.para)));
        assert_eq!(
            out.numeric("first_birth_age"),
            Some(NumberValue::Int(rec.first_birth_age))
        );
        assert_eq!(out.numeric("age"), Some(NumberValue::Int(rec.age)));
        let t = out.numeric("temperature").expect("temperature extracted");
        assert!((t.as_f64() - rec.temperature).abs() < 1e-9);
    }
}

#[test]
fn full_ontology_recovers_gold_history() {
    // With the complete vocabulary the paper's patterns recover most gold
    // terms, but terms longer than three words are structurally out of
    // reach of `JJ NN NN` (e.g. "chronic obstructive pulmonary disease").
    // Which records draw long terms depends on the corpus RNG stream, so
    // require ≥75% across the corpus for the paper pattern set and ≥90%
    // per record for the extended set.
    let corpus = CorpusBuilder::new().records(10).seed(5).build();
    let pipeline = Pipeline::with_default_schema();
    let extended = cmr::core::MedicalTermExtractor::new(cmr::ontology::Ontology::full())
        .with_patterns(cmr::core::PatternSet::Extended);
    let mut total_gold = 0usize;
    let mut total_found = 0usize;
    for rec in &corpus.records {
        let out = pipeline.extract(&rec.text);
        let extracted: Vec<&String> = out
            .predefined_medical
            .iter()
            .chain(&out.other_medical)
            .collect();
        total_gold += rec.medical_history.len();
        total_found += rec
            .medical_history
            .iter()
            .filter(|g| extracted.contains(g))
            .count();
        // Extended patterns close the long-term gap.
        let parsed = cmr::text::Record::parse(&rec.text);
        let pmh = parsed.section("Past Medical History").expect("section");
        let ext_names: Vec<&str> = extended
            .extract(&pmh.body)
            .into_iter()
            .map(|h| h.concept.preferred)
            .collect();
        let ext_found = rec
            .medical_history
            .iter()
            .filter(|g| ext_names.contains(&g.as_str()))
            .count();
        assert!(
            ext_found * 10 >= rec.medical_history.len() * 9,
            "patient {}: extended found {ext_found} of {:?} ({ext_names:?})",
            rec.patient_id,
            rec.medical_history
        );
    }
    assert!(
        total_found * 4 >= total_gold * 3,
        "paper patterns recovered {total_found} of {total_gold} gold history terms"
    );
}

#[test]
fn extracted_record_json_roundtrip() {
    let pipeline = Pipeline::with_default_schema();
    let out = pipeline.extract(cmr::corpus::APPENDIX_RECORD);
    let json = serde_json::to_string(&out).expect("serialize");
    let back: cmr::core::ExtractedRecord = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.numeric("pulse"), out.numeric("pulse"));
    assert_eq!(back.predefined_medical, out.predefined_medical);
}

#[test]
fn smoking_classifier_learns_from_generated_corpus() {
    let corpus = CorpusBuilder::new().records(50).seed(3).build();
    let examples: Vec<(String, String)> = corpus
        .records
        .iter()
        .filter_map(|r| {
            let s = r.smoking?;
            let parsed = cmr::text::Record::parse(&r.text);
            Some((
                parsed.section("Social History")?.body.clone(),
                s.label().to_string(),
            ))
        })
        .collect();
    assert!(examples.len() >= 40);
    let mut clf = CategoricalExtractor::new(FeatureOptions::paper_smoking());
    clf.train(&examples);
    // Training accuracy should be near-perfect (ID3 fits separable data).
    let correct = examples
        .iter()
        .filter(|(text, label)| clf.classify(text) == Some(label.as_str()))
        .count();
    assert!(
        correct * 100 >= examples.len() * 95,
        "train accuracy {correct}/{}",
        examples.len()
    );
}
