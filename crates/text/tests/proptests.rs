//! Property tests for the text substrate.

use cmr_text::{annotate_numbers, split_sentences, tokenize, Record, TokenKind};
use proptest::prelude::*;

proptest! {
    /// Every token's span slices back to exactly its text.
    #[test]
    fn token_spans_roundtrip(s in "[ -~\n]{0,200}") {
        for t in tokenize(&s) {
            prop_assert_eq!(t.span.slice(&s), t.text.as_str());
        }
    }

    /// Tokens are ordered and non-overlapping.
    #[test]
    fn tokens_are_ordered(s in "[ -~\n]{0,200}") {
        let toks = tokenize(&s);
        for w in toks.windows(2) {
            prop_assert!(w[0].span.end <= w[1].span.start);
        }
    }

    /// Tokenizing never drops non-whitespace bytes: the sum of token lengths
    /// equals the non-whitespace length of the input (ASCII inputs).
    #[test]
    fn no_bytes_lost(s in "[ -~]{0,200}") {
        let toks = tokenize(&s);
        let tok_len: usize = toks.iter().map(|t| t.text.len()).sum();
        let non_ws = s.chars().filter(|c| !c.is_ascii_whitespace()).count();
        prop_assert_eq!(tok_len, non_ws);
    }

    /// Every integer formats and re-lexes to the same value.
    #[test]
    fn integers_roundtrip(v in 0i64..1_000_000) {
        let s = v.to_string();
        let toks = tokenize(&s);
        prop_assert_eq!(toks.len(), 1);
        match toks[0].kind {
            TokenKind::Number(n) => prop_assert_eq!(n.as_f64(), v as f64),
            _ => prop_assert!(false, "expected a number token"),
        }
    }

    /// Ratios like blood pressures re-lex to their components.
    #[test]
    fn ratios_roundtrip(a in 1i64..400, b in 1i64..400) {
        let s = format!("{a}/{b}");
        let toks = tokenize(&s);
        prop_assert_eq!(toks.len(), 1);
        let anns = annotate_numbers(&toks);
        prop_assert_eq!(anns.len(), 1);
        prop_assert_eq!(anns[0].value.to_string(), s);
    }

    /// Sentence spans never overlap and appear in order.
    #[test]
    fn sentences_ordered(s in "[ -~\n]{0,300}") {
        let sents = split_sentences(&s);
        for w in sents.windows(2) {
            prop_assert!(w[0].span.end <= w[1].span.start);
        }
    }

    /// Record parsing never panics and preserves all section bodies as
    /// substrings of the source (modulo continuation-line joining).
    #[test]
    fn record_parse_total(s in "[ -~\n]{0,300}") {
        let rec = Record::parse(&s);
        for sec in &rec.sections {
            prop_assert!(sec.span.end <= s.len());
        }
    }
}
