//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no crates.io mirror, so
//! this workspace vendors a minimal serde-compatible facade: the same item
//! paths (`serde::Serialize`, `serde::Deserialize`, `#[derive(Serialize,
//! Deserialize)]`) backed by a simple value-tree data model instead of the
//! real visitor architecture. `serde_json` (also vendored) serializes the
//! tree. The subset implemented is exactly what this workspace uses:
//! derived structs with named fields, enums with unit/tuple/struct
//! variants, and the std types below.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A serialized value tree (the JSON data model).
///
/// Objects preserve insertion order so derived structs serialize their
/// fields in declaration order, matching real serde_json output shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every integral type this workspace serializes).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object view.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// Result uses serde's externally-tagged representation:
// `{"Ok": value}` / `{"Err": error}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        let (tag, inner) = match self {
            Ok(v) => ("Ok", v.to_value()),
            Err(e) => ("Err", e.to_value()),
        };
        Value::Object(vec![(tag.to_string(), inner)])
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Value::Object(entries) = v {
            if let [(tag, inner)] = entries.as_slice() {
                return match tag.as_str() {
                    "Ok" => T::from_value(inner).map(Ok),
                    "Err" => E::from_value(inner).map(Err),
                    other => Err(Error::custom(format!("unknown Result tag {other:?}"))),
                };
            }
        }
        Err(Error::custom(format!(
            "expected Ok/Err object, found {v:?}"
        )))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected array of length {LEN}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Support machinery used by the derive macros. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up a struct field, treating a missing key as `null` (so
    /// `Option` fields default to `None`, as with real serde).
    pub fn field<T: Deserialize>(
        obj: &[(String, Value)],
        strukt: &str,
        name: &str,
    ) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::custom(format!("{strukt}.{name}: {e}")))
            }
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field {strukt}.{name}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3i64).to_value(), Value::Int(3));
    }

    #[test]
    fn map_preserves_order_sorted() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 1i64);
        m.insert("a".to_string(), 2i64);
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::Int(2)),
                ("b".into(), Value::Int(1))
            ])
        );
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (144i64, 90i64);
        let v = t.to_value();
        assert_eq!(<(i64, i64)>::from_value(&v).unwrap(), t);
    }
}
