//! # cmr-serve — the resident extraction service
//!
//! Every other entry point in this codebase is batch: read a corpus, run
//! it, exit. The north star (heavy EHR traffic, many concurrent callers)
//! needs the opposite shape — a process that stays up with *warm* state:
//! the string interner, the shared two-generation parse cache, and the
//! ontology's concept table are built once and reused by every request,
//! so steady-state latency reflects extraction work, not setup.
//!
//! The crate is three small layers:
//!
//! * [`http`] — a deliberately minimal HTTP/1.1 implementation over
//!   `std::net` (no async runtime, no external dependencies, same
//!   philosophy as the vendored serde): sized bodies, keep-alive,
//!   pipelining, `Expect: 100-continue`, chunked responses.
//! * [`ndjson`] — the NDJSON note reader shared by `cmr extract -` and
//!   the batch endpoint (one definition of "skip blank lines").
//! * [`Server`] — accept loop, readiness-polled idle set, bounded work
//!   queue with `429` admission control, worker pool over
//!   [`cmr_engine::ServiceHandle`], and graceful drain on the shared
//!   shutdown flag.
//!
//! Endpoints: `POST /extract` (one note in, one record out),
//! `POST /extract/batch` (NDJSON in, streamed NDJSON out),
//! `GET /health` (readiness + startup-lint rollup),
//! `GET /metrics` (cumulative [`cmr_engine::EngineMetrics`] including
//! request-latency histograms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod http;
pub mod ndjson;
mod server;

pub use server::{ServeConfig, ServeError, ServeSummary, Server};
