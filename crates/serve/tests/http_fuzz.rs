//! Proptest fuzz over the pure HTTP/1.1 request parser.
//!
//! [`parse_buffered`] is the entire hostile-input surface of the service
//! below the socket: every byte a client sends flows through it. These
//! properties pin totality — arbitrary byte soup never panics, and every
//! input resolves to "need more", a 4xx-shaped rejection, or a parsed
//! request whose invariants hold — plus determinism and the pipelining
//! contract (a parsed request drains exactly its own bytes).

use cmr_serve::http::{parse_buffered, ParseStep, ReadOutcome};
use proptest::prelude::*;

proptest! {
    /// Raw byte soup: no panic, no socket-level outcome, and a verdict
    /// that is stable across repeated parses of the same buffer.
    #[test]
    fn byte_soup_always_yields_a_verdict(
        bytes in proptest::collection::vec(0u8..=255, 0..4096),
        max_body in 0usize..8192,
    ) {
        let mut buf = bytes.clone();
        let before = buf.len();
        let step = parse_buffered(&mut buf, max_body);
        let mut again = bytes;
        let replay = parse_buffered(&mut again, max_body);
        prop_assert_eq!(
            format!("{step:?}"),
            format!("{replay:?}"),
            "the parser must be a pure function of the buffer"
        );
        match step {
            ParseStep::NeedMore { .. } => prop_assert_eq!(buf.len(), before),
            ParseStep::Done(ReadOutcome::Request(req)) => {
                prop_assert!(!req.method.is_empty());
                prop_assert!(req.target.starts_with('/'));
                prop_assert!(req.body.len() <= max_body);
                for (name, _) in &req.headers {
                    prop_assert!(
                        name.chars().all(|c| !c.is_ascii_uppercase()),
                        "header names are lowercased at parse time"
                    );
                }
                prop_assert!(buf.len() < before, "a parsed request drains its bytes");
            }
            ParseStep::Done(ReadOutcome::Malformed(_) | ReadOutcome::TooLarge) => {}
            ParseStep::Done(other) => {
                prop_assert!(false, "socketless parse produced {other:?}");
            }
        }
    }

    /// Structured soup: plausible-but-often-broken request lines, header
    /// blocks, and Content-Length declarations that may lie about the
    /// body. Totality must survive the near-misses, and when a request
    /// does parse its body length must match the declaration.
    #[test]
    fn structured_soup_is_still_total(
        method in "[A-Za-z]{0,7}",
        target in "[ -~]{0,24}",
        version in prop::sample::select(vec![
            "HTTP/1.1", "HTTP/1.0", "HTTP/2", "HTP/1.1", "http/1.1", "",
        ]),
        headers in proptest::collection::vec(("[A-Za-z-]{0,10}", "[ -~]{0,16}"), 0..5),
        declared in 0usize..300,
        body in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let mut head = format!("{method} {target} {version}\r\n");
        for (name, value) in &headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {declared}\r\n\r\n"));
        let mut buf = head.into_bytes();
        buf.extend_from_slice(&body);
        match parse_buffered(&mut buf, 4096) {
            ParseStep::Done(ReadOutcome::Request(req)) => {
                prop_assert_eq!(req.body.len(), declared);
                prop_assert!(!req.method.is_empty());
            }
            ParseStep::NeedMore { .. }
            | ParseStep::Done(ReadOutcome::Malformed(_) | ReadOutcome::TooLarge) => {}
            ParseStep::Done(other) => {
                prop_assert!(false, "socketless parse produced {other:?}");
            }
        }
    }

    /// A well-formed request followed by arbitrary pipelined bytes:
    /// the request parses, its fields round-trip, and the follower
    /// bytes survive in the buffer untouched.
    #[test]
    fn valid_request_parses_and_pipelined_bytes_survive(
        body in proptest::collection::vec(0u8..=255, 0..200),
        tail in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let head = format!(
            "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut buf = head.into_bytes();
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&tail);
        match parse_buffered(&mut buf, 4096) {
            ParseStep::Done(ReadOutcome::Request(req)) => {
                prop_assert_eq!(req.method, "POST");
                prop_assert_eq!(req.target, "/extract");
                prop_assert_eq!(req.body, body);
                prop_assert!(req.keep_alive && req.http11);
                prop_assert_eq!(buf, tail);
            }
            other => prop_assert!(false, "valid request must parse, got {other:?}"),
        }
    }
}
